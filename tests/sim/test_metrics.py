"""Scheduling metrics: utilization, slowdown, saturation detection."""

import numpy as np
import pytest

from repro.sim.metrics import (
    bounded_slowdown,
    mean_slowdown,
    mean_wait_time,
    saturation_point,
    saturation_utilization,
    utilization,
    wasted_fraction,
)
from repro.sim.engine import simulate
from repro.cluster.cluster import Cluster
from tests.conftest import make_job, make_workload


def one_job_result(run_time=100.0, procs=4, nodes=8):
    w = make_workload([make_job(run_time=run_time, procs=procs)])
    return simulate(w, Cluster([(nodes, 32.0)]))


class TestUtilization:
    def test_single_job(self):
        # 4 procs x 100s of work over an 8-node machine for 100s => 0.5.
        result = one_job_result()
        assert utilization(result) == pytest.approx(0.5)

    def test_full_machine(self):
        result = one_job_result(procs=8)
        assert utilization(result) == pytest.approx(1.0)

    def test_wasted_fraction_zero_without_failures(self):
        assert wasted_fraction(one_job_result()) == 0.0


class TestSlowdown:
    def test_no_wait_is_one(self):
        assert mean_slowdown(one_job_result()) == pytest.approx(1.0)

    def test_waiting_inflates(self):
        w = make_workload(
            [
                make_job(job_id=1, submit_time=0.0, run_time=100.0, procs=8),
                make_job(job_id=2, submit_time=0.0, run_time=100.0, procs=8),
            ]
        )
        result = simulate(w, Cluster([(8, 32.0)]))
        # Second job waits 100s then runs 100s: slowdown 2; mean = 1.5.
        assert mean_slowdown(result) == pytest.approx(1.5)

    def test_bounded_slowdown_clamps_short_jobs(self):
        w = make_workload(
            [
                make_job(job_id=1, submit_time=0.0, run_time=100.0, procs=8),
                make_job(job_id=2, submit_time=0.0, run_time=1.0, procs=8),
            ]
        )
        result = simulate(w, Cluster([(8, 32.0)]))
        # The 1s job waits 100s: raw slowdown 101, bounded (threshold 10) 10.1.
        assert mean_slowdown(result) > bounded_slowdown(result, threshold=10.0)

    def test_mean_wait(self):
        w = make_workload(
            [
                make_job(job_id=1, submit_time=0.0, run_time=100.0, procs=8),
                make_job(job_id=2, submit_time=0.0, run_time=100.0, procs=8),
            ]
        )
        result = simulate(w, Cluster([(8, 32.0)]))
        assert mean_wait_time(result) == pytest.approx(50.0)


class TestSaturationPoint:
    def test_clean_knee(self):
        loads = [0.2, 0.4, 0.6, 0.8, 1.0]
        utils = [0.2, 0.4, 0.6, 0.62, 0.62]  # saturates at ~0.6
        point = saturation_point(loads, utils)
        assert point.load == 0.6
        assert point.utilization == pytest.approx(0.6)
        assert point.max_utilization == pytest.approx(0.62)

    def test_never_saturates(self):
        loads = [0.2, 0.4, 0.6]
        utils = [0.2, 0.4, 0.6]
        point = saturation_point(loads, utils)
        assert point.load == 0.6

    def test_saturated_from_start(self):
        loads = [0.5, 0.8]
        utils = [0.3, 0.3]
        point = saturation_point(loads, utils)
        assert point.load == 0.5

    def test_unsorted_input_handled(self):
        point = saturation_point([0.8, 0.2], [0.35, 0.2])
        assert point.load == 0.2

    def test_shorthand(self):
        assert saturation_utilization([0.2, 0.8], [0.2, 0.5]) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            saturation_point([], [])
        with pytest.raises(ValueError):
            saturation_point([0.1], [0.1, 0.2])
        with pytest.raises(ValueError):
            saturation_point([0.1], [0.1], tolerance=2.0)


class TestEmptyResults:
    def test_nan_for_empty(self):
        w = make_workload([make_job(procs=100)])  # rejected: too big
        result = simulate(w, Cluster([(8, 32.0)]))
        assert np.isnan(mean_slowdown(result))
        assert np.isnan(mean_wait_time(result))
        assert utilization(result) == 0.0
