"""Late-binding requirement refresh and retry-guard isolation."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.ladder import CapacityLadder
from repro.core import SuccessiveApproximation
from repro.core.base import Feedback
from repro.sim.engine import Simulation
from repro.sim.failure import FailureModel
from repro.sim.metrics import utilization
from tests.conftest import make_job, make_workload


def group_burst(n=8, procs=4, submit_gap=1.0, used=4.0):
    """One similarity group submitting a burst of jobs almost at once."""
    return [
        make_job(
            job_id=i + 1,
            submit_time=i * submit_gap,
            run_time=100.0,
            procs=procs,
            req_mem=32.0,
            used_mem=used,
            user_id=9,
        )
        for i in range(n)
    ]


class TestLateBinding:
    def run(self, late_binding):
        # A tiny 32MB tier forces queueing; the 24MB tier is where estimated
        # jobs should end up.  All jobs of one group arrive before the first
        # completes, so enqueue-time estimates are all 32.
        cluster = Cluster([(4, 32.0), (16, 24.0)])
        sim = Simulation(
            make_workload(group_burst()),
            cluster,
            estimator=SuccessiveApproximation(),
            failure_model=FailureModel(rng=0),
            late_binding=late_binding,
        )
        return sim.run()

    def test_late_binding_uses_fresh_estimates(self):
        result = self.run(late_binding=True)
        # After the first job completes, later jobs bind at the head with
        # the reduced estimate and flow onto the 24MB tier.
        assert result.n_reduced_submissions >= 5

    def test_enqueue_binding_starves_feedback(self):
        result = self.run(late_binding=False)
        # Every requirement was fixed at 32 when the burst arrived.
        assert result.n_reduced_submissions == 0

    def test_late_binding_improves_throughput(self):
        late = self.run(late_binding=True)
        frozen = self.run(late_binding=False)
        assert late.makespan <= frozen.makespan
        assert utilization(late) >= utilization(frozen)

    def test_refresh_never_strands_jobs(self):
        # A group whose estimate climbs back to the request after failures:
        # queued big jobs must not become unsatisfiable mid-queue.
        cluster = Cluster([(8, 24.0), (8, 32.0)])
        jobs = [
            make_job(job_id=1, submit_time=0.0, run_time=10.0, procs=2, used_mem=5.0),
            make_job(job_id=2, submit_time=15.0, run_time=10.0, procs=2, used_mem=5.0),
            make_job(job_id=3, submit_time=30.0, run_time=50.0, procs=8, used_mem=30.0),
            make_job(job_id=4, submit_time=31.0, run_time=10.0, procs=16, used_mem=5.0),
        ]
        result = Simulation(
            make_workload(jobs),
            cluster,
            estimator=SuccessiveApproximation(),
            failure_model=FailureModel(rng=0),
        ).run()
        assert result.n_completed == 4


class TestRetryGuardIsolation:
    def test_guard_success_does_not_raise_group_estimate(self):
        ladder = CapacityLadder([24.0, 32.0])
        est = SuccessiveApproximation(max_reduced_attempts=2)
        est.bind(ladder)
        job = make_job(req_mem=32.0, used_mem=30.0, user_id=3)
        sibling = make_job(job_id=2, req_mem=32.0, used_mem=5.0, user_id=3)
        # Descend the group to 24 via the sibling.
        for _ in range(2):
            req = est.estimate(sibling)
            est.observe(
                Feedback(job=sibling, succeeded=True, requirement=req, granted=32.0)
            )
        assert est.estimate(sibling) == 24.0
        # The 30MB job fails at 24, escalates through the guard, succeeds at 32.
        est.observe(Feedback(job=job, succeeded=False, requirement=24.0, granted=24.0))
        est.observe(
            Feedback(job=job, succeeded=True, requirement=32.0, granted=32.0, attempt=2)
        )
        # The group's learned estimate survives the guarded success.
        assert est.estimate(sibling) == 24.0

    def test_guard_failure_does_not_decay_group_alpha(self):
        ladder = CapacityLadder([24.0, 32.0])
        est = SuccessiveApproximation(alpha=2.0, beta=0.0)
        est.bind(ladder)
        job = make_job(req_mem=32.0, used_mem=5.0)
        req = est.estimate(job)
        est.observe(Feedback(job=job, succeeded=True, requirement=req, granted=32.0))
        # A spurious failure on a guard-escalated attempt leaves alpha alone.
        est.observe(
            Feedback(job=job, succeeded=False, requirement=32.0, granted=32.0, attempt=5)
        )
        assert est.group_state_for(job).alpha == 2.0
