"""Attempt records, job summaries and run results."""

import pytest

from repro.sim.records import AttemptRecord, JobSummary, SimResult
from tests.conftest import make_job


def attempt(job_id=1, start=0.0, end=100.0, succeeded=True, **kw):
    defaults = dict(
        job_id=job_id,
        attempt=0,
        submit_time=0.0,
        start_time=start,
        end_time=end,
        procs=4,
        requirement=32.0,
        granted=32.0,
        succeeded=succeeded,
        resource_failure=not succeeded,
        reduced=False,
    )
    defaults.update(kw)
    return AttemptRecord(**defaults)


def summary(job=None, first_submit=0.0, start=10.0, end=110.0, **kw):
    job = job or make_job(run_time=100.0)
    defaults = dict(
        job=job,
        first_submit=first_submit,
        start_time=start,
        end_time=end,
        n_attempts=1,
        n_resource_failures=0,
        completed=True,
        final_requirement=32.0,
        final_granted=32.0,
        reduced=False,
        wasted_node_seconds=0.0,
    )
    defaults.update(kw)
    return JobSummary(**defaults)


class TestAttemptRecord:
    def test_duration_and_node_seconds(self):
        a = attempt(start=10.0, end=60.0, procs=4)
        assert a.duration == 50.0
        assert a.node_seconds == 200.0


class TestJobSummary:
    def test_response_and_wait(self):
        s = summary(first_submit=0.0, start=10.0, end=110.0)
        assert s.response_time == 110.0
        assert s.wait_time == pytest.approx(10.0)

    def test_slowdown_definition(self):
        # (wait + run) / run, per the paper's footnote 5.
        s = summary(first_submit=0.0, start=100.0, end=200.0)
        assert s.slowdown == pytest.approx(2.0)

    def test_bounded_slowdown_floor(self):
        short = summary(
            job=make_job(run_time=1.0), first_submit=0.0, start=0.0, end=1.0
        )
        assert short.bounded_slowdown(threshold=10.0) == 1.0

    def test_zero_runtime_slowdown_is_inf_not_an_error(self):
        # Real traces record zero-second runtimes (accounting truncation).
        # Job validation rejects them at construction, but summaries built
        # from externally-loaded records must not crash mean_slowdown with a
        # ZeroDivisionError — the slowdown of a zero-runtime job is inf.
        from types import SimpleNamespace

        s = summary(job=SimpleNamespace(run_time=0.0), first_submit=0.0, end=50.0)
        assert s.slowdown == float("inf")
        assert s.bounded_slowdown(threshold=10.0) == pytest.approx(5.0)


class TestSimResult:
    def make_result(self):
        return SimResult(
            workload_name="w",
            cluster_name="c",
            estimator_name="e",
            policy_name="fcfs",
            total_nodes=8,
            attempts=[attempt(), attempt(job_id=2, succeeded=False)],
            summaries=[summary()],
            rejected_jobs=[],
            t_first_submit=0.0,
            t_last_end=110.0,
            n_attempts=2,
            n_resource_failures=1,
            n_spurious_failures=0,
            n_reduced_submissions=1,
            useful_node_seconds=400.0,
            wasted_node_seconds=400.0,
        )

    def test_counters(self):
        r = self.make_result()
        assert r.makespan == 110.0
        assert r.n_jobs == 1
        assert r.n_completed == 1
        assert r.frac_reduced_submissions == 0.5
        assert r.frac_failed_executions == 0.5

    def test_empty_fractions(self):
        r = SimResult(
            workload_name="w",
            cluster_name="c",
            estimator_name="e",
            policy_name="fcfs",
            total_nodes=8,
            attempts=[],
            summaries=[],
            rejected_jobs=[],
            t_first_submit=0.0,
            t_last_end=0.0,
        )
        assert r.frac_reduced_submissions == 0.0
        assert r.frac_failed_executions == 0.0

    def test_summary_table_mentions_names(self):
        text = self.make_result().summary_table()
        assert "fcfs" in text
        assert "1 resource failures" in text

    def test_arrays(self):
        r = self.make_result()
        assert r.slowdowns().tolist() == [pytest.approx(1.1)]
        assert r.wait_times().tolist() == [pytest.approx(10.0)]
