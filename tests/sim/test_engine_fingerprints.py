"""Bit-identical regression gate for the optimized engine hot path.

Every optimization of the simulation engine (lazy scheduling passes,
estimate-version memoization, allocation fast paths, raw-heap draining, …)
is admissible only if it is *behaviorally invisible*: each reference slice
in :mod:`tests.sim.engine_reference` must still produce the exact
``SimResult.fingerprint()`` recorded in ``tests/data/engine_fingerprints.json``
before the optimizations landed.  The digest covers per-job summaries and
per-attempt records via ``float.hex()``, so even a last-bit float deviation
or a reordered attempt fails the gate.

The observer-attached variant pins a second invariant: observability is
passive.  Wiring a (counting) observer into the run must not perturb the
simulation — same digest with the observer on and off.

If a PR *intends* to change engine behavior, regenerate the digests with
``PYTHONPATH=src python tests/sim/record_engine_fingerprints.py`` and call
the change out in the PR description.
"""

import json
from collections import defaultdict
from pathlib import Path

import pytest

from repro.obs import CounterObserver
from repro.sim.batch import fast_lane_eligible, simulate_batch

from tests.sim.engine_reference import (
    REFERENCE_SLICES,
    run_slice,
    slice_batch_config,
    slice_workload,
)

_DATA_PATH = Path(__file__).resolve().parents[1] / "data" / "engine_fingerprints.json"
RECORDED = json.loads(_DATA_PATH.read_text(encoding="utf-8"))["fingerprints"]


def test_every_reference_slice_is_recorded():
    assert set(RECORDED) == set(REFERENCE_SLICES)


@pytest.mark.parametrize("name", sorted(REFERENCE_SLICES))
def test_fingerprint_matches_recorded(name):
    result = run_slice(REFERENCE_SLICES[name])
    assert result.fingerprint() == RECORDED[name], (
        f"slice {name!r} diverged from the recorded seed fingerprint — an "
        f"engine change altered simulation behavior (regenerate the recording "
        f"only if the change is intended)"
    )


@pytest.mark.parametrize("name", sorted(REFERENCE_SLICES))
def test_batched_single_lane_matches_recorded(name):
    """Every slice through simulate_batch (K=1) reproduces the recorded
    digest — whichever lane (array fast lane or streamed engine lane) the
    configuration routes to."""
    spec = REFERENCE_SLICES[name]
    config = slice_batch_config(spec)
    result = simulate_batch(slice_workload(spec), [config])[0]
    lane = "fast" if fast_lane_eligible(config) else "engine"
    assert result.fingerprint() == RECORDED[name], (
        f"slice {name!r} diverged through the batched {lane} lane — the "
        f"batched engine is only admissible while bit-identical to scalar"
    )


def _slices_by_load():
    groups = defaultdict(list)
    for name, spec in REFERENCE_SLICES.items():
        groups[spec.load].append(name)
    return sorted(groups.items())


@pytest.mark.parametrize("load,names", _slices_by_load())
def test_batched_merged_lanes_match_recorded(load, names):
    """All same-workload slices as ONE merged batch: mixed estimators,
    policies, fault injection, and timelines advancing lock-step must each
    still land on their recorded scalar digest."""
    names = sorted(names)
    specs = [REFERENCE_SLICES[name] for name in names]
    workload = slice_workload(specs[0])
    results = simulate_batch(
        workload, [slice_batch_config(spec) for spec in specs]
    )
    for name, result in zip(names, results):
        assert result.fingerprint() == RECORDED[name], (
            f"slice {name!r} diverged inside a merged K={len(names)} batch "
            f"(load {load})"
        )


@pytest.mark.parametrize(
    "name",
    # One slice per policy/feature family keeps the observer pass cheap while
    # still covering every code path an observer hooks into.
    ["fig5-fcfs-successive", "fig5-sjf-none", "fig5-backfilling-successive",
     "faults-fcfs-successive"],
)
def test_observer_does_not_perturb_fingerprint(name):
    observer = CounterObserver()
    result = run_slice(REFERENCE_SLICES[name], observer=observer)
    assert result.fingerprint() == RECORDED[name], (
        f"slice {name!r} changed digest with an observer attached — "
        f"observability must be passive"
    )
    assert observer.snapshot()  # the observer did actually see events
