"""Scheduling policies: FCFS head blocking, SJF ordering, EASY backfilling."""

import pytest

from repro.cluster.cluster import Cluster
from repro.sim.policies import (
    EasyBackfilling,
    Fcfs,
    QueuedJob,
    RunningJob,
    ShortestJobFirst,
)
from tests.conftest import make_job


def entry(job_id=1, procs=4, requirement=32.0, req_time=100.0, enqueue=0.0):
    job = make_job(job_id=job_id, procs=procs, req_time=req_time)
    return QueuedJob(job=job, attempt=0, requirement=requirement, enqueue_time=enqueue)


class TestFcfs:
    def test_empty_queue(self):
        assert Fcfs().select(0.0, [], Cluster([(8, 32.0)]), []) is None

    def test_head_starts_when_it_fits(self):
        cluster = Cluster([(8, 32.0)])
        queue = [entry(1, procs=4), entry(2, procs=4)]
        assert Fcfs().select(0.0, queue, cluster, []) == 0

    def test_head_blocks_everything(self):
        cluster = Cluster([(8, 32.0)])
        queue = [entry(1, procs=16), entry(2, procs=1)]  # head cannot fit
        assert Fcfs().select(0.0, queue, cluster, []) is None

    def test_requirement_checked(self):
        cluster = Cluster([(8, 24.0)])
        queue = [entry(1, procs=1, requirement=32.0)]
        assert Fcfs().select(0.0, queue, cluster, []) is None


class TestSjf:
    def test_picks_shortest_estimate(self):
        cluster = Cluster([(8, 32.0)])
        queue = [entry(1, req_time=500.0), entry(2, req_time=50.0)]
        assert ShortestJobFirst().select(0.0, queue, cluster, []) == 1

    def test_shortest_blocks_if_unfit(self):
        cluster = Cluster([(8, 32.0)])
        queue = [entry(1, procs=2, req_time=500.0), entry(2, procs=16, req_time=50.0)]
        assert ShortestJobFirst().select(0.0, queue, cluster, []) is None

    def test_tie_broken_by_arrival(self):
        cluster = Cluster([(8, 32.0)])
        queue = [entry(1, req_time=100.0, enqueue=5.0), entry(2, req_time=100.0, enqueue=1.0)]
        assert ShortestJobFirst().select(0.0, queue, cluster, []) == 1


class TestEasyBackfilling:
    def make_setup(self):
        """Head needs 8 nodes; 4 are busy until t=100; 4 free now."""
        cluster = Cluster([(8, 32.0)])
        running_alloc = cluster.allocate(4, 32.0)
        running = [RunningJob(end_time=100.0, allocation=running_alloc, procs=4)]
        return cluster, running

    def test_head_starts_when_it_fits(self):
        cluster = Cluster([(8, 32.0)])
        queue = [entry(1, procs=4)]
        assert EasyBackfilling().select(0.0, queue, cluster, []) == 0

    def test_backfills_short_job(self):
        cluster, running = self.make_setup()
        queue = [
            entry(1, procs=8),  # head: must wait for t=100
            entry(2, procs=4, req_time=50.0),  # fits now, done before 100
        ]
        assert EasyBackfilling().select(0.0, queue, cluster, running) == 1

    def test_does_not_backfill_reservation_breaker(self):
        cluster, running = self.make_setup()
        queue = [
            entry(1, procs=8),  # reservation at t=100
            entry(2, procs=4, req_time=500.0),  # would hold nodes past 100
        ]
        assert EasyBackfilling().select(0.0, queue, cluster, running) is None

    def test_backfills_non_conflicting_long_job(self):
        # Head needs only the 32MB tier; a long small-memory job on the other
        # tier does not delay it.
        cluster = Cluster([(8, 32.0), (8, 8.0)])
        alloc = cluster.allocate(4, 32.0)
        running = [RunningJob(end_time=100.0, allocation=alloc, procs=4)]
        queue = [
            entry(1, procs=8, requirement=32.0),
            entry(2, procs=8, requirement=8.0, req_time=10_000.0),
        ]
        assert EasyBackfilling().select(0.0, queue, cluster, running) == 1

    def test_backfill_candidate_must_fit_now(self):
        cluster, running = self.make_setup()
        queue = [
            entry(1, procs=8),
            entry(2, procs=16, req_time=10.0),  # bigger than the machine
        ]
        assert EasyBackfilling().select(0.0, queue, cluster, running) is None

    def test_hypothetical_allocation_rolled_back(self):
        cluster, running = self.make_setup()
        free_before = cluster.snapshot_free()
        queue = [entry(1, procs=8), entry(2, procs=4, req_time=500.0)]
        EasyBackfilling().select(0.0, queue, cluster, running)
        assert cluster.snapshot_free() == free_before

    def test_needs_running_flag(self):
        assert EasyBackfilling.needs_running
        assert not Fcfs.needs_running
