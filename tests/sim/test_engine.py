"""The discrete-event engine: §3.1 semantics and conservation invariants."""

import pytest
from hypothesis import given, settings

from repro.cluster.cluster import Cluster
from repro.core import NoEstimation, OracleEstimator, SuccessiveApproximation
from repro.sim.engine import Simulation, simulate
from repro.sim.failure import FailureModel
from repro.sim.metrics import utilization
from repro.sim.policies import EasyBackfilling, Fcfs, ShortestJobFirst
from tests.conftest import make_job, make_workload, unique_jobs_strategy


def cluster_32():
    return Cluster([(8, 32.0)])


class TestBasicExecution:
    def test_single_job_runs_immediately(self):
        w = make_workload([make_job(submit_time=10.0, run_time=100.0, procs=4)])
        result = simulate(w, cluster_32())
        assert result.n_completed == 1
        summary = result.summaries[0]
        assert summary.start_time == 10.0
        assert summary.end_time == 110.0
        assert summary.slowdown == pytest.approx(1.0)

    def test_jobs_queue_when_cluster_full(self):
        w = make_workload(
            [
                make_job(job_id=1, submit_time=0.0, run_time=100.0, procs=8),
                make_job(job_id=2, submit_time=10.0, run_time=50.0, procs=8),
            ]
        )
        result = simulate(w, cluster_32())
        second = result.summaries[1]
        assert second.start_time == 100.0  # waits for the first to finish
        assert second.end_time == 150.0

    def test_fcfs_no_overtaking(self):
        # A small job behind a blocked big job must NOT start first.
        w = make_workload(
            [
                make_job(job_id=1, submit_time=0.0, run_time=100.0, procs=8),
                make_job(job_id=2, submit_time=1.0, run_time=10.0, procs=8),
                make_job(job_id=3, submit_time=2.0, run_time=10.0, procs=1),
            ]
        )
        result = simulate(w, cluster_32(), policy=Fcfs())
        starts = {s.job.job_id: s.start_time for s in result.summaries}
        assert starts[3] >= starts[2]

    def test_parallel_starts_when_room(self):
        w = make_workload(
            [
                make_job(job_id=1, submit_time=0.0, run_time=100.0, procs=4),
                make_job(job_id=2, submit_time=0.0, run_time=100.0, procs=4),
            ]
        )
        result = simulate(w, cluster_32())
        assert all(s.start_time == 0.0 for s in result.summaries)

    def test_simulation_single_use(self):
        w = make_workload([make_job()])
        sim = Simulation(w, cluster_32())
        sim.run()
        with pytest.raises(RuntimeError, match="single-use"):
            sim.run()


class TestFailureSemantics:
    def test_underallocated_job_fails_and_retries(self):
        # One 24MB machine class; the job needs 30MB but a reduced estimate
        # sends it there first.
        cluster = Cluster([(4, 24.0), (4, 32.0)])
        w = make_workload(
            [make_job(job_id=1, req_mem=32.0, used_mem=30.0, run_time=100.0, procs=2)]
        )
        est = SuccessiveApproximation(alpha=2.0)
        # Prime the estimator's group to the 24MB level via a sibling job.
        result = simulate(
            make_workload(
                [
                    make_job(job_id=1, req_mem=32.0, used_mem=10.0, run_time=10.0, procs=2),
                    make_job(
                        job_id=2,
                        submit_time=20.0,
                        req_mem=32.0,
                        used_mem=10.0,
                        run_time=10.0,
                        procs=2,
                    ),
                    make_job(
                        job_id=3,
                        submit_time=40.0,
                        req_mem=32.0,
                        used_mem=30.0,
                        run_time=10.0,
                        procs=2,
                    ),
                ]
            ),
            cluster,
            estimator=est,
            seed=0,
        )
        assert result.n_resource_failures >= 1
        assert result.n_completed == 3  # the failed job completed on retry

    def test_failed_job_returns_to_head(self):
        # §3.1: the failed job re-enters at the head, ahead of earlier queuers.
        cluster = Cluster([(8, 24.0), (8, 32.0)])
        jobs = [
            # Group-mates that drive the group estimate down to 24.
            make_job(job_id=1, submit_time=0.0, run_time=10.0, procs=2, used_mem=5.0),
            make_job(job_id=2, submit_time=15.0, run_time=10.0, procs=2, used_mem=5.0),
            # The victim: usage 30 > 24 fails on the small tier until the
            # retry guard escalates it back to its (feasible) 32MB request.
            make_job(job_id=3, submit_time=30.0, run_time=50.0, procs=8, used_mem=30.0),
            # A later full-machine job that would love to jump ahead.
            make_job(job_id=4, submit_time=31.0, run_time=10.0, procs=16, used_mem=5.0),
        ]
        result = simulate(
            make_workload(jobs), cluster, estimator=SuccessiveApproximation(), seed=0
        )
        starts = {s.job.job_id: s.start_time for s in result.summaries}
        failures = {s.job.job_id: s.n_resource_failures for s in result.summaries}
        assert failures[3] >= 1
        # Job 3's successful run begins before job 4 runs (head-of-queue retry).
        assert starts[3] <= starts[4]

    def test_wasted_time_accounted(self):
        cluster = Cluster([(4, 16.0), (4, 32.0)])
        jobs = [
            make_job(job_id=1, submit_time=0.0, run_time=10.0, procs=2, used_mem=4.0),
            make_job(job_id=2, submit_time=20.0, run_time=10.0, procs=2, used_mem=4.0),
            make_job(job_id=3, submit_time=40.0, run_time=100.0, procs=2, used_mem=20.0),
        ]
        result = simulate(
            make_workload(jobs), cluster, estimator=SuccessiveApproximation(), seed=0
        )
        if result.n_resource_failures:
            assert result.wasted_node_seconds > 0

    def test_spurious_failures_retry_to_completion(self):
        w = make_workload(
            [make_job(job_id=i, submit_time=float(i), procs=1) for i in range(20)]
        )
        result = Simulation(
            w,
            cluster_32(),
            failure_model=FailureModel(rng=0, spurious_failure_prob=0.3),
        ).run()
        assert result.n_completed == 20
        assert result.n_spurious_failures > 0


class TestRejection:
    def test_oversized_job_rejected_not_deadlocked(self):
        w = make_workload(
            [
                make_job(job_id=1, procs=100),  # bigger than the machine
                make_job(job_id=2, submit_time=1.0, procs=4),
            ]
        )
        result = simulate(w, cluster_32())
        assert len(result.rejected_jobs) == 1
        assert result.n_completed == 1

    def test_unsatisfiable_memory_rejected(self):
        w = make_workload([make_job(req_mem=64.0, used_mem=40.0, procs=2)])
        result = simulate(w, Cluster([(8, 32.0)]))
        assert len(result.rejected_jobs) == 1


class TestEstimatorIntegration:
    def test_oracle_fills_small_tier(self):
        # With the oracle, 32MB-requesting jobs that use 4MB run on the small
        # machines, leaving the big tier free.
        cluster = Cluster([(4, 32.0), (4, 8.0)])
        w = make_workload(
            [make_job(job_id=i, submit_time=0.0, procs=4, used_mem=4.0) for i in (1, 2)]
        )
        result = simulate(w, cluster, estimator=OracleEstimator())
        assert all(s.start_time == 0.0 for s in result.summaries)
        # Without estimation the second job must wait.
        result_base = simulate(
            make_workload(
                [make_job(job_id=i, submit_time=0.0, procs=4, used_mem=4.0) for i in (1, 2)]
            ),
            Cluster([(4, 32.0), (4, 8.0)]),
            estimator=NoEstimation(),
        )
        starts = sorted(s.start_time for s in result_base.summaries)
        assert starts[1] > 0.0

    def test_estimation_never_loses_jobs(self, sim_trace, two_tier_cluster):
        result = simulate(sim_trace, two_tier_cluster, estimator=SuccessiveApproximation(), seed=1)
        assert result.n_completed == len(sim_trace) - len(result.rejected_jobs)
        assert len(result.rejected_jobs) == 0


class TestConservationInvariants:
    @settings(max_examples=25, deadline=None)
    @given(unique_jobs_strategy(min_size=1, max_size=25))
    def test_every_job_completes_exactly_once(self, jobs):
        w = make_workload(jobs)
        cluster = Cluster([(16, 32.0), (16, 24.0), (16, 8.0)])
        result = simulate(w, cluster, estimator=SuccessiveApproximation(), seed=0)
        assert result.n_completed + len(result.rejected_jobs) == len(jobs)
        completed_ids = [s.job.job_id for s in result.summaries]
        assert len(set(completed_ids)) == len(completed_ids)

    @settings(max_examples=25, deadline=None)
    @given(unique_jobs_strategy(min_size=1, max_size=25))
    def test_cluster_fully_freed_at_end(self, jobs):
        cluster = Cluster([(16, 32.0), (16, 24.0), (16, 8.0)])
        simulate(make_workload(jobs), cluster, estimator=SuccessiveApproximation(), seed=0)
        assert cluster.free_nodes == cluster.total_nodes

    @settings(max_examples=25, deadline=None)
    @given(unique_jobs_strategy(min_size=1, max_size=25))
    def test_time_sanity_per_job(self, jobs):
        w = make_workload(jobs)
        result = simulate(w, Cluster([(16, 32.0), (16, 8.0)]), seed=0)
        for s in result.summaries:
            assert s.start_time >= s.first_submit
            assert s.end_time == pytest.approx(s.start_time + s.job.run_time)
            assert s.slowdown >= 1.0 - 1e-9

    @settings(max_examples=15, deadline=None)
    @given(unique_jobs_strategy(min_size=1, max_size=20))
    def test_utilization_bounded(self, jobs):
        w = make_workload(jobs)
        result = simulate(w, Cluster([(16, 32.0), (16, 8.0)]), seed=0)
        assert 0.0 <= utilization(result) <= 1.0 + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(unique_jobs_strategy(min_size=2, max_size=20))
    def test_policies_agree_on_conservation(self, jobs):
        for policy in (Fcfs(), ShortestJobFirst(), EasyBackfilling()):
            cluster = Cluster([(16, 32.0), (16, 8.0)])
            result = simulate(make_workload(jobs), cluster, policy=policy, seed=0)
            assert result.n_completed + len(result.rejected_jobs) == len(jobs)
            assert cluster.free_nodes == cluster.total_nodes


class TestDeterminism:
    def test_same_seed_same_result(self, sim_trace, two_tier_cluster):
        from repro.cluster import paper_cluster

        r1 = simulate(sim_trace, paper_cluster(24.0), estimator=SuccessiveApproximation(), seed=5)
        r2 = simulate(sim_trace, paper_cluster(24.0), estimator=SuccessiveApproximation(), seed=5)
        assert utilization(r1) == utilization(r2)
        assert [s.end_time for s in r1.summaries] == [s.end_time for s in r2.summaries]
