"""Unit tests for the batched lock-step engine (:mod:`repro.sim.batch`).

The fingerprint suite (``test_engine_fingerprints.py``) pins the batched
engine to the recorded reference digests; these tests cover the rest of the
contract: scalar parity across estimator families and K widths, lane
routing, shared-cluster cloning, attempt-collection modes, and the
``JobColumns`` edge cases (empty traces, zero-runtime jobs) flowing through
the batched path.
"""

import math

import numpy as np
import pytest

from repro.cluster import paper_cluster
from repro.core import (
    LastInstance,
    NoEstimation,
    OracleEstimator,
    SuccessiveApproximation,
)
from repro.similarity.keys import by_user_app
from repro.sim import FaultConfig, simulate
from repro.sim.batch import (
    BatchConfig,
    fast_lane_eligible,
    seed_group_arrays,
    simulate_batch,
    _SharedTrace,
)
from repro.sim.policies import EasyBackfilling, Fcfs, ShortestJobFirst
from repro.workload import (
    Workload,
    drop_full_machine_jobs,
    lanl_cm5_like,
    scale_load,
)
from repro.workload.columns import JobColumns


@pytest.fixture(scope="module")
def workload():
    return scale_load(
        drop_full_machine_jobs(lanl_cm5_like(n_jobs=500, seed=3)), 0.8
    )


def scalar_fingerprint(workload, collect_attempts=True, **kwargs):
    return simulate(
        workload, paper_cluster(24.0), collect_attempts=collect_attempts,
        **kwargs
    ).fingerprint()


def test_empty_config_list(workload):
    assert simulate_batch(workload, []) == []


def test_mixed_estimators_match_scalar(workload):
    """Four estimator families in one batch — NoEstimation and
    SuccessiveApproximation ride the fast lane, Oracle and LastInstance the
    engine lane — each lane bit-identical to its scalar run."""
    factories = [
        NoEstimation,
        SuccessiveApproximation,
        OracleEstimator,
        LastInstance,
    ]
    configs = [
        BatchConfig(cluster=paper_cluster(24.0), estimator=factory())
        for factory in factories
    ]
    results = simulate_batch(workload, configs)
    for factory, result in zip(factories, results):
        assert result.fingerprint() == scalar_fingerprint(
            workload, estimator=factory()
        ), f"estimator {factory.__name__} diverged in a mixed batch"


def test_mixed_policies_match_scalar(workload):
    policies = [Fcfs, ShortestJobFirst, EasyBackfilling]
    configs = [
        BatchConfig(
            cluster=paper_cluster(24.0),
            estimator=SuccessiveApproximation(),
            policy=policy(),
        )
        for policy in policies
    ]
    results = simulate_batch(workload, configs)
    for policy, result in zip(policies, results):
        assert result.fingerprint() == scalar_fingerprint(
            workload, estimator=SuccessiveApproximation(), policy=policy()
        ), f"policy {policy.__name__} diverged in a mixed batch"


def test_faults_and_spurious_in_one_batch(workload):
    """Faulted and fault-free lanes advance together without perturbing
    each other's RNG streams."""
    faults = FaultConfig(node_mtbf=5.0e5, node_mttr=3600.0)
    configs = [
        BatchConfig(cluster=paper_cluster(24.0), estimator=NoEstimation()),
        BatchConfig(
            cluster=paper_cluster(24.0),
            estimator=NoEstimation(),
            fault_config=faults,
            spurious_failure_prob=0.01,
        ),
    ]
    results = simulate_batch(workload, configs)
    assert results[0].fingerprint() == scalar_fingerprint(
        workload, estimator=NoEstimation()
    )
    assert results[1].fingerprint() == scalar_fingerprint(
        workload,
        estimator=NoEstimation(),
        fault_config=faults,
        spurious_failure_prob=0.01,
    )
    assert results[1].n_node_failures > 0  # the fault lane did inject


@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_lane_widths_match_scalar(workload, k):
    """K successive lanes with diverging alphas, each equal to its scalar
    twin — width never changes any lane's result."""
    alphas = [2.0, 1.5, 2.5, 3.0, 1.75, 2.25, 2.75, 4.0][:k]
    configs = [
        BatchConfig(
            cluster=paper_cluster(24.0),
            estimator=SuccessiveApproximation(alpha=alpha),
        )
        for alpha in alphas
    ]
    results = simulate_batch(workload, configs)
    for alpha, result in zip(alphas, results):
        assert result.fingerprint() == scalar_fingerprint(
            workload, estimator=SuccessiveApproximation(alpha=alpha)
        ), f"alpha={alpha} lane diverged at K={k}"


def test_collect_attempts_off_matches_scalar(workload):
    configs = [
        BatchConfig(
            cluster=paper_cluster(24.0), estimator=SuccessiveApproximation()
        ),
        BatchConfig(
            cluster=paper_cluster(24.0),
            estimator=SuccessiveApproximation(),
            policy=ShortestJobFirst(),
        ),
    ]
    results = simulate_batch(workload, configs, collect_attempts=False)
    assert results[0].attempts == []
    assert results[1].attempts == []
    assert results[0].fingerprint() == scalar_fingerprint(
        workload, collect_attempts=False, estimator=SuccessiveApproximation()
    )
    assert results[1].fingerprint() == scalar_fingerprint(
        workload,
        collect_attempts=False,
        estimator=SuccessiveApproximation(),
        policy=ShortestJobFirst(),
    )


@pytest.mark.parametrize("policy_factory", [ShortestJobFirst, EasyBackfilling])
@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_widened_policy_lanes_match_scalar(workload, policy_factory, k):
    """SJF/backfilling lanes (fast since PR 10) at K=1..8 with diverging
    alphas — each bit-identical to its scalar twin, attempts collected."""
    alphas = [2.0, 1.5, 2.5, 3.0, 1.75, 2.25, 2.75, 4.0][:k]
    configs = [
        BatchConfig(
            cluster=paper_cluster(24.0),
            estimator=SuccessiveApproximation(alpha=alpha),
            policy=policy_factory(),
        )
        for alpha in alphas
    ]
    results = simulate_batch(workload, configs)
    for alpha, result in zip(alphas, results):
        assert result.fingerprint() == scalar_fingerprint(
            workload,
            estimator=SuccessiveApproximation(alpha=alpha),
            policy=policy_factory(),
        ), f"alpha={alpha} {policy_factory.__name__} lane diverged at K={k}"


@pytest.mark.parametrize(
    "estimator_factory", [NoEstimation, SuccessiveApproximation]
)
def test_first_fit_lanes_match_scalar(workload, estimator_factory):
    """first_fit clusters ride the fast lane via the tabulated fill order
    (declaration order filtered to eligible levels)."""
    def cluster():
        return paper_cluster(24.0, strategy="first_fit")

    configs = [
        BatchConfig(cluster=cluster(), estimator=estimator_factory()),
        BatchConfig(
            cluster=cluster(),
            estimator=estimator_factory(),
            policy=EasyBackfilling(),
        ),
    ]
    results = simulate_batch(workload, configs)
    assert results[0].fingerprint() == simulate(
        workload, cluster(), estimator=estimator_factory()
    ).fingerprint()
    assert results[1].fingerprint() == simulate(
        workload, cluster(), estimator=estimator_factory(),
        policy=EasyBackfilling(),
    ).fingerprint()


def test_per_lane_collect_attempts_override(workload):
    """A lane-level ``BatchConfig.collect_attempts`` wins over the
    batch-wide flag in both directions, without perturbing results."""
    configs = [
        BatchConfig(
            cluster=paper_cluster(24.0),
            estimator=SuccessiveApproximation(),
            collect_attempts=True,
        ),
        BatchConfig(
            cluster=paper_cluster(24.0),
            estimator=SuccessiveApproximation(),
            policy=ShortestJobFirst(),
            collect_attempts=False,
        ),
        BatchConfig(
            cluster=paper_cluster(24.0),
            estimator=SuccessiveApproximation(),
        ),
    ]
    results = simulate_batch(workload, configs, collect_attempts=False)
    assert results[0].attempts != []
    assert results[1].attempts == []
    assert results[2].attempts == []  # inherits the batch-wide False
    assert results[0].fingerprint() == scalar_fingerprint(
        workload, estimator=SuccessiveApproximation()
    )
    assert results[1].fingerprint() == scalar_fingerprint(
        workload,
        collect_attempts=False,
        estimator=SuccessiveApproximation(),
        policy=ShortestJobFirst(),
    )


def test_mixed_fast_and_engine_lanes_coexist(workload):
    """One batch spanning both lane kinds — widened fast configs (SJF,
    backfilling, first_fit) next to engine-lane configs (oracle estimator,
    worst_fit) — every lane bit-identical to scalar."""
    cases = [
        dict(estimator=SuccessiveApproximation(), policy=ShortestJobFirst()),
        dict(estimator=OracleEstimator()),  # engine lane
        dict(estimator=SuccessiveApproximation(), policy=EasyBackfilling()),
        dict(estimator=LastInstance(), policy=EasyBackfilling()),  # engine
    ]
    configs = [
        BatchConfig(cluster=paper_cluster(24.0), **case) for case in cases
    ]
    results = simulate_batch(workload, configs)
    for case, result in zip(cases, results):
        expected = scalar_fingerprint(
            workload,
            estimator=type(case["estimator"])(),
            **({"policy": type(case["policy"])()} if "policy" in case else {}),
        )
        assert result.fingerprint() == expected, f"{case} diverged"


def test_engine_lanes_sharing_one_cluster_are_cloned(workload):
    """Engine lanes mutate their cluster, so lanes handed the *same*
    instance (the memoized ``ClusterSpec.materialize`` does this) must be
    isolated by cloning — results identical to fresh-cluster runs."""
    shared = paper_cluster(24.0)
    configs = [
        BatchConfig(
            cluster=shared,
            estimator=OracleEstimator(),  # forces the engine lane
            policy=ShortestJobFirst(),
        )
        for _ in range(2)
    ]
    results = simulate_batch(workload, configs)
    expected = scalar_fingerprint(
        workload,
        estimator=OracleEstimator(),
        policy=ShortestJobFirst(),
    )
    assert results[0].fingerprint() == expected
    assert results[1].fingerprint() == expected


def test_fast_lane_routing():
    cluster = paper_cluster(24.0)
    assert fast_lane_eligible(BatchConfig(cluster=cluster))
    assert fast_lane_eligible(
        BatchConfig(cluster=cluster, estimator=NoEstimation())
    )
    assert fast_lane_eligible(
        BatchConfig(cluster=cluster, estimator=SuccessiveApproximation())
    )
    assert fast_lane_eligible(
        BatchConfig(cluster=cluster, spurious_failure_prob=0.01)
    )
    # PR 10 widened the lane: SJF, EASY backfilling and first_fit ride it.
    assert fast_lane_eligible(
        BatchConfig(cluster=cluster, policy=ShortestJobFirst())
    )
    assert fast_lane_eligible(
        BatchConfig(cluster=cluster, policy=EasyBackfilling())
    )
    assert fast_lane_eligible(
        BatchConfig(
            cluster=paper_cluster(24.0, strategy="first_fit"),
            estimator=SuccessiveApproximation(),
        )
    )
    # Everything the fast lane does not model must fall to the engine lane.
    assert not fast_lane_eligible(
        BatchConfig(cluster=paper_cluster(24.0, strategy="worst_fit"))
    )
    assert not fast_lane_eligible(
        BatchConfig(cluster=cluster, estimator=OracleEstimator())
    )
    assert not fast_lane_eligible(
        BatchConfig(cluster=cluster, record_timeline=True)
    )
    assert not fast_lane_eligible(
        BatchConfig(cluster=cluster, observer=object())
    )
    assert not fast_lane_eligible(
        BatchConfig(
            cluster=cluster,
            fault_config=FaultConfig(node_mtbf=1e6, node_mttr=3600.0),
        )
    )
    assert not fast_lane_eligible(
        BatchConfig(
            cluster=cluster,
            estimator=SuccessiveApproximation(record_trajectories=True),
        )
    )
    assert not fast_lane_eligible(
        BatchConfig(
            cluster=cluster,
            estimator=SuccessiveApproximation(key_fn=by_user_app),
        )
    )


def test_seed_group_arrays_shapes(workload):
    trace = _SharedTrace(workload)
    alphas = [2.0, 3.0, 4.0]
    est, alpha, group_req = seed_group_arrays(trace, alphas)
    gid, _ = trace.group_info()
    n_groups = len(group_req)
    assert n_groups == len(set(gid))
    assert est.shape == (3, n_groups)
    assert alpha.shape == (3, n_groups)
    # Algorithm 1 lines 3-4: every group opens with E_i = R and alpha_i =
    # the lane's alpha — constant per row.
    for k, a in enumerate(alphas):
        assert np.allclose(alpha[k], a)
        assert np.array_equal(est[k], np.asarray(group_req))


# ------------------------------------------------------- JobColumns edges
def test_empty_workload_through_batched_path():
    empty = Workload(jobs=[], total_nodes=1024, node_mem=32.0, name="empty")
    configs = [
        BatchConfig(cluster=paper_cluster(24.0), estimator=NoEstimation()),
        BatchConfig(
            cluster=paper_cluster(24.0),
            estimator=SuccessiveApproximation(),
            policy=ShortestJobFirst(),
        ),
    ]
    results = simulate_batch(empty, configs)
    for result in results:
        assert result.n_jobs == 0
        assert result.summaries == []
        assert result.attempts == []
    assert results[0].fingerprint() == scalar_fingerprint(
        empty, estimator=NoEstimation()
    )
    assert results[1].fingerprint() == scalar_fingerprint(
        empty,
        estimator=SuccessiveApproximation(),
        policy=ShortestJobFirst(),
    )


def _zero_runtime_workload():
    """Three jobs, the middle one with a zero-second recorded runtime (real
    traces truncate sub-second jobs) — only constructible unvalidated, via
    the columnar backing."""
    n = 3
    cols = JobColumns(
        job_id=np.arange(1, n + 1),
        submit_time=np.array([0.0, 10.0, 20.0]),
        run_time=np.array([100.0, 0.0, 50.0]),
        procs=np.array([2, 1, 3]),
        req_mem=np.array([10.0, 8.0, 16.0]),
        used_mem=np.array([6.0, 4.0, 12.0]),
        req_time=np.full(n, 100.0),
        user_id=np.zeros(n, dtype=np.int64),
        group_id=np.zeros(n, dtype=np.int64),
        app_id=np.zeros(n, dtype=np.int64),
        status=np.ones(n, dtype=np.int64),
    )
    return Workload.from_columns(
        cols, total_nodes=1024, node_mem=32.0, name="zero-runtime"
    )


@pytest.mark.parametrize(
    "estimator_factory", [NoEstimation, SuccessiveApproximation]
)
def test_zero_runtime_jobs_through_batched_path(estimator_factory):
    """A zero-runtime job completes instantly in both engines and lands the
    unbounded-slowdown rule (slowdown = inf) identically."""
    workload = _zero_runtime_workload()
    config = BatchConfig(
        cluster=paper_cluster(24.0), estimator=estimator_factory()
    )
    result = simulate_batch(workload, [config])[0]
    assert result.fingerprint() == scalar_fingerprint(
        workload, estimator=estimator_factory()
    )
    assert result.n_jobs == 3
    slowdowns = result.slowdowns()
    assert np.isinf(slowdowns).sum() == 1  # exactly the zero-runtime job
    assert math.isinf(slowdowns.max())
