"""Node fault injection: config, injector draws, and engine integration."""

import math

import pytest

from repro.cluster import Cluster, paper_cluster
from repro.core import SuccessiveApproximation
from repro.core.base import Feedback
from repro.core.baselines import NoEstimation
from repro.sim import FaultConfig, NodeFaultInjector, Simulation, fault_rng, simulate
from repro.sim.failure import FailureModel
from tests.conftest import make_job, make_workload


class TestFaultConfig:
    def test_disabled_by_default(self):
        config = FaultConfig()
        assert math.isinf(config.node_mtbf)
        assert not config.enabled

    def test_finite_mtbf_enables(self):
        assert FaultConfig(node_mtbf=1e6).enabled

    def test_mtbf_validation(self):
        with pytest.raises(ValueError, match="node_mtbf"):
            FaultConfig(node_mtbf=0.0)
        with pytest.raises(ValueError, match="node_mtbf"):
            FaultConfig(node_mtbf=-1.0)
        with pytest.raises(ValueError, match="node_mtbf"):
            FaultConfig(node_mtbf=math.nan)

    def test_mttr_must_be_finite_positive(self):
        with pytest.raises(ValueError):
            FaultConfig(node_mttr=0.0)
        with pytest.raises(ValueError, match="finite"):
            FaultConfig(node_mttr=math.inf)

    def test_burst_validation(self):
        with pytest.raises(ValueError, match="burst_size"):
            FaultConfig(burst_size=0)
        with pytest.raises(ValueError):
            FaultConfig(burst_prob=1.5)


class TestInjector:
    def test_disabled_injector_never_fires(self):
        injector = NodeFaultInjector(FaultConfig(), rng=fault_rng(0))
        assert math.isinf(injector.next_failure_delay(1024))

    def test_deterministic_given_seed(self):
        config = FaultConfig(node_mtbf=1e6)
        a = NodeFaultInjector(config, rng=fault_rng(7))
        b = NodeFaultInjector(config, rng=fault_rng(7))
        assert [a.next_failure_delay(64) for _ in range(20)] == [
            b.next_failure_delay(64) for _ in range(20)
        ]
        assert [a.repair_delay() for _ in range(20)] == [
            b.repair_delay() for _ in range(20)
        ]

    def test_rng_independent_of_failure_model_stream(self):
        # The fault stream is spawned through a tagged SeedSequence, so it
        # must differ from the FailureModel's default_rng(seed) draws.
        import numpy as np

        assert fault_rng(3).random() != np.random.default_rng(3).random()

    def test_failure_rate_scales_with_node_count(self):
        injector = NodeFaultInjector(FaultConfig(node_mtbf=1e6), rng=fault_rng(0))
        small = [injector.next_failure_delay(1) for _ in range(3000)]
        large = [injector.next_failure_delay(1000) for _ in range(3000)]
        assert sum(small) / len(small) == pytest.approx(1e6, rel=0.1)
        assert sum(large) / len(large) == pytest.approx(1e3, rel=0.1)

    def test_burst_draw(self):
        injector = NodeFaultInjector(
            FaultConfig(node_mtbf=1e6, burst_size=4, burst_prob=1.0),
            rng=fault_rng(0),
        )
        assert injector.n_victims() == 4
        no_burst = NodeFaultInjector(
            FaultConfig(node_mtbf=1e6, burst_size=4, burst_prob=0.0),
            rng=fault_rng(0),
        )
        assert no_burst.n_victims() == 1

    def test_choose_level_skips_empty_and_handles_all_down(self):
        injector = NodeFaultInjector(FaultConfig(node_mtbf=1e6), rng=fault_rng(0))
        assert injector.choose_level({32.0: 0, 24.0: 5}) == 24.0
        assert injector.choose_level({32.0: 0, 24.0: 0}) is None


class RecordingEstimator(NoEstimation):
    """NoEstimation plus a transcript of every feedback observation."""

    def __init__(self):
        super().__init__()
        self.feedbacks = []

    def observe(self, feedback: Feedback) -> None:
        self.feedbacks.append(feedback)
        super().observe(feedback)


def result_fingerprint(result):
    """Everything that should be bit-identical between two runs."""
    return (
        result.n_attempts,
        result.n_resource_failures,
        result.useful_node_seconds,
        result.wasted_node_seconds,
        result.t_last_end,
        [(s.job.job_id, s.start_time, s.end_time, s.n_attempts) for s in result.summaries],
    )


class TestEngineIntegration:
    def test_disabled_faults_identical_to_baseline(self, sim_trace):
        # Acceptance criterion: FaultConfig() (MTBF = inf) must be
        # point-for-point identical to a run without fault injection.
        cluster = paper_cluster(24.0)
        base = simulate(
            sim_trace, cluster, estimator=SuccessiveApproximation(), seed=0
        )
        gated = simulate(
            sim_trace,
            paper_cluster(24.0),
            estimator=SuccessiveApproximation(),
            seed=0,
            fault_config=FaultConfig(),
        )
        assert gated.n_fault_kills == 0 and gated.n_node_failures == 0
        assert result_fingerprint(base) == result_fingerprint(gated)

    def test_faulty_run_completes_all_jobs_and_repairs_drain(self, sim_trace):
        cluster = paper_cluster(24.0)
        result = simulate(
            sim_trace,
            cluster,
            estimator=SuccessiveApproximation(),
            seed=0,
            fault_config=FaultConfig(node_mtbf=5e6, node_mttr=2000.0),
        )
        assert result.n_node_failures > 0
        assert result.node_downtime_seconds > 0
        assert result.n_completed == result.n_jobs
        # Trailing repair events drain before the event loop exits.
        assert cluster.down_nodes == 0
        assert cluster.free_nodes == cluster.total_nodes
        assert "node faults" in result.summary_table()

    def test_kill_surfaces_as_resource_unrelated_failure(self):
        # One job occupying the whole (tiny) cluster: the first node failure
        # must kill it, and the estimator must see a failure with
        # granted >= used — §2.1's false positive, recognizable only with
        # explicit feedback.
        job = make_job(job_id=1, procs=4, req_mem=32.0, used_mem=8.0, run_time=50_000.0)
        workload = make_workload([job], total_nodes=4)
        estimator = RecordingEstimator()
        cluster = Cluster([(4, 32.0)])
        result = Simulation(
            workload,
            cluster,
            estimator=estimator,
            failure_model=FailureModel(rng=0),
            fault_injector=NodeFaultInjector(
                FaultConfig(node_mtbf=40_000.0, node_mttr=100.0),
                rng=fault_rng(0),
            ),
        ).run()
        assert result.n_fault_kills >= 1
        assert result.n_completed == 1
        assert result.wasted_node_seconds > 0
        kills = [f for f in estimator.feedbacks if not f.succeeded]
        assert kills, "the kill never reached the estimator"
        assert all(f.granted >= f.used for f in kills)
        # The job's summary accounts for every attempt, kills included.
        assert result.summaries[0].n_attempts == result.n_attempts
        assert result.summaries[0].n_resource_failures == 0

    def test_fault_kills_counted_separately_from_resource_failures(self, sim_trace):
        result = simulate(
            sim_trace,
            paper_cluster(24.0),
            estimator=SuccessiveApproximation(),
            seed=0,
            fault_config=FaultConfig(node_mtbf=5e6, node_mttr=2000.0),
        )
        fault_records = [
            a for a in result.attempts if not a.succeeded and not a.resource_failure
        ]
        assert len(fault_records) == result.n_fault_kills

    def test_faults_degrade_implicit_estimation(self, sim_trace):
        # The tentpole claim at engine level: fault kills poison the
        # implicit-feedback estimator (it backs off groups for failures that
        # were never about resources), so the reduced-submission share drops
        # relative to the clean run.
        def frac_reduced(fault_config):
            return simulate(
                sim_trace,
                paper_cluster(24.0),
                estimator=SuccessiveApproximation(alpha=2.0, beta=0.0),
                seed=0,
                fault_config=fault_config,
                collect_attempts=False,
            ).frac_reduced_submissions

        clean = frac_reduced(None)
        faulty = frac_reduced(FaultConfig(node_mtbf=2e6, node_mttr=2000.0))
        assert clean > 0
        assert faulty < clean
