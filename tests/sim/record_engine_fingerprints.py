"""Record the engine's reference-slice fingerprints to tests/data/.

Run from the repo root::

    PYTHONPATH=src python tests/sim/record_engine_fingerprints.py

The recorded digests are the regression baseline for
``tests/sim/test_engine_fingerprints.py`` — regenerate them only when an
engine behavior change is intended, and say so in the PR.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from sim.engine_reference import REFERENCE_SLICES, run_slice  # noqa: E402


def main() -> int:
    repo_root = Path(__file__).resolve().parents[2]
    out_path = repo_root / "tests" / "data" / "engine_fingerprints.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    fingerprints = {}
    for name, spec in REFERENCE_SLICES.items():
        result = run_slice(spec)
        fingerprints[name] = result.fingerprint()
        print(f"{name:32s} {fingerprints[name][:16]}…  "
              f"({result.n_jobs} jobs, {result.n_attempts} attempts)")
    doc = {
        "comment": (
            "SimResult.fingerprint() per reference slice; regenerate with "
            "tests/sim/record_engine_fingerprints.py only for intended "
            "behavior changes"
        ),
        "fingerprints": fingerprints,
    }
    out_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
