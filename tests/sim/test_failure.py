"""Execution-outcome model (§3.1 failure semantics)."""

import numpy as np
import pytest

from repro.sim.failure import FailureModel
from tests.conftest import make_job


class TestResourceFailures:
    def test_sufficient_capacity_succeeds(self):
        model = FailureModel(rng=0)
        outcome = model.outcome(make_job(used_mem=8.0, run_time=100.0), granted_capacity=8.0)
        assert outcome.succeeded
        assert outcome.duration == 100.0
        assert not outcome.resource_related

    def test_insufficient_capacity_fails(self):
        model = FailureModel(rng=0)
        outcome = model.outcome(make_job(used_mem=8.0), granted_capacity=7.9)
        assert not outcome.succeeded
        assert outcome.resource_related

    def test_failure_time_uniform_in_runtime(self):
        # §3.1: "fails after a random time, drawn uniformly between zero and
        # the execution run-time".
        model = FailureModel(rng=0)
        job = make_job(used_mem=8.0, run_time=100.0)
        durations = [model.outcome(job, 1.0).duration for _ in range(2000)]
        assert all(0 <= d < 100.0 for d in durations)
        assert np.mean(durations) == pytest.approx(50.0, rel=0.1)
        # Spread consistent with uniform (std = range/sqrt(12) ~ 28.9).
        assert np.std(durations) == pytest.approx(28.9, rel=0.15)

    def test_deterministic_given_seed(self):
        a = FailureModel(rng=3)
        b = FailureModel(rng=3)
        job = make_job(used_mem=8.0)
        assert a.outcome(job, 1.0).duration == b.outcome(job, 1.0).duration


class TestSpuriousFailures:
    def test_disabled_by_default(self):
        model = FailureModel(rng=0)
        job = make_job(used_mem=8.0)
        assert all(model.outcome(job, 32.0).succeeded for _ in range(100))

    def test_rate_respected(self):
        model = FailureModel(rng=0, spurious_failure_prob=0.25)
        job = make_job(used_mem=8.0, run_time=50.0)
        outcomes = [model.outcome(job, 32.0) for _ in range(4000)]
        failures = [o for o in outcomes if not o.succeeded]
        assert len(failures) / len(outcomes) == pytest.approx(0.25, abs=0.03)
        assert all(not f.resource_related for f in failures)
        assert all(0 <= f.duration < 50.0 for f in failures)

    def test_resource_failure_takes_precedence(self):
        # Under-allocation is checked first; its failures are resource_related.
        model = FailureModel(rng=0, spurious_failure_prob=1.0)
        outcome = model.outcome(make_job(used_mem=8.0), granted_capacity=1.0)
        assert outcome.resource_related

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            FailureModel(spurious_failure_prob=1.5)


class TestEngineSpuriousStatistics:
    def test_spurious_failures_counted_and_all_jobs_complete(self, sim_trace):
        from repro.cluster import paper_cluster
        from repro.sim import simulate

        result = simulate(
            sim_trace,
            paper_cluster(24.0),
            spurious_failure_prob=0.05,
            seed=0,
            collect_attempts=True,
        )
        assert result.n_spurious_failures > 0
        assert result.n_completed == result.n_jobs
        # Spurious crashes are per-attempt Bernoulli(0.05): the observed rate
        # over all attempts should be close (no estimation, so no resource
        # failures compete for the samples).
        assert result.n_resource_failures == 0
        rate = result.n_spurious_failures / result.n_attempts
        assert rate == pytest.approx(0.05, abs=0.015)
        # Every spurious record is a non-resource failure with granted >= used.
        spurious = [
            a for a in result.attempts if not a.succeeded and not a.resource_failure
        ]
        assert len(spurious) == result.n_spurious_failures
        assert all(a.granted >= 0 and not a.resource_failure for a in spurious)
        assert result.wasted_node_seconds > 0
