"""Tail (percentile) metrics."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.sim import simulate, slowdown_percentile, wait_time_percentile
from tests.conftest import make_job, make_workload


def serialized_result(n=10):
    """n full-machine jobs arriving together: slowdowns 1, 2, ..., n."""
    jobs = [make_job(job_id=i + 1, submit_time=0.0, run_time=100.0, procs=8) for i in range(n)]
    return simulate(make_workload(jobs), Cluster([(8, 32.0)]))


class TestPercentiles:
    def test_median_slowdown(self):
        result = serialized_result(9)  # slowdowns 1..9
        assert slowdown_percentile(result, 50.0) == pytest.approx(5.0)

    def test_tail_exceeds_mean(self):
        from repro.sim import mean_slowdown

        result = serialized_result(20)
        assert slowdown_percentile(result, 95.0) > mean_slowdown(result)

    def test_wait_percentile(self):
        result = serialized_result(5)  # waits 0, 100, ..., 400
        assert wait_time_percentile(result, 100.0) == pytest.approx(400.0)
        assert wait_time_percentile(result, 0.0) == pytest.approx(0.0)

    def test_monotone_in_percentile(self):
        result = serialized_result(15)
        values = [slowdown_percentile(result, p) for p in (10, 50, 90, 99)]
        assert values == sorted(values)

    def test_empty_result_nan(self):
        result = simulate(make_workload([make_job(procs=100)]), Cluster([(8, 32.0)]))
        assert np.isnan(slowdown_percentile(result))
        assert np.isnan(wait_time_percentile(result))

    def test_validation(self):
        result = serialized_result(2)
        with pytest.raises(ValueError):
            slowdown_percentile(result, 101.0)
        with pytest.raises(ValueError):
            wait_time_percentile(result, -1.0)

    def test_estimation_improves_tail_on_paper_cluster(self, sim_trace):
        from repro.cluster import paper_cluster
        from repro.core import NoEstimation, SuccessiveApproximation

        base = simulate(sim_trace, paper_cluster(24.0), estimator=NoEstimation(), seed=1)
        est = simulate(
            sim_trace, paper_cluster(24.0), estimator=SuccessiveApproximation(), seed=1
        )
        assert slowdown_percentile(est, 95.0) <= slowdown_percentile(base, 95.0) * 1.05
