"""Engine edge cases: estimator/policy interplay, degenerate inputs."""

import pytest
from hypothesis import given, settings

from repro.cluster.cluster import Cluster
from repro.core.base import Estimator
from repro.core import (
    HybridEstimator,
    LastInstance,
    OracleEstimator,
    RegressionEstimator,
    ReinforcementLearning,
    RobustLineSearch,
    SuccessiveApproximation,
)
from repro.core.online import OnlineSimilarityEstimator
from repro.sim.engine import Simulation, simulate
from repro.sim.failure import FailureModel
from repro.sim.metrics import utilization
from repro.sim.policies import EasyBackfilling, ShortestJobFirst
from tests.conftest import make_job, make_workload, unique_jobs_strategy


def mixed_cluster():
    return Cluster([(16, 32.0), (16, 24.0), (16, 8.0)])


ALL_ESTIMATORS = [
    SuccessiveApproximation,
    LastInstance,
    lambda: ReinforcementLearning(rng=0),
    RegressionEstimator,
    RobustLineSearch,
    OracleEstimator,
    HybridEstimator,
    OnlineSimilarityEstimator,
]


class TestEveryEstimatorCompletesTheTrace:
    @pytest.mark.parametrize("factory", ALL_ESTIMATORS)
    def test_conservation(self, factory, sim_trace):
        from repro.cluster import paper_cluster

        result = simulate(sim_trace, paper_cluster(24.0), estimator=factory(), seed=3)
        assert result.n_completed == len(sim_trace)
        assert 0.0 < utilization(result) <= 1.0

    @pytest.mark.parametrize("factory", ALL_ESTIMATORS)
    def test_with_spurious_failures(self, factory):
        jobs = [
            make_job(job_id=i, submit_time=float(i * 5), procs=4, user_id=i % 3)
            for i in range(40)
        ]
        result = Simulation(
            make_workload(jobs),
            mixed_cluster(),
            estimator=factory(),
            failure_model=FailureModel(rng=1, spurious_failure_prob=0.2),
        ).run()
        assert result.n_completed == 40


class InfeasibleRetryEstimator(Estimator):
    """First attempt under-estimates (forcing a resource failure); every
    retry estimate exceeds every machine class in the cluster."""

    name = "infeasible-retry"

    def estimate(self, job, attempt=0):
        return 16.0 if attempt == 0 else 1e9

    def observe(self, feedback):
        pass


class TestInfeasibleResubmission:
    def test_resubmission_falls_back_to_original_request(self):
        # Regression: a job whose *refreshed* estimate no machine class can
        # hold used to be rejected like a fresh arrival — silently dropped
        # from the summaries after it had already run and burned
        # node-seconds that stayed in the global waste counters.  A
        # resubmission must instead fall back to the job's original request.
        cluster = Cluster([(2, 32.0), (2, 16.0)])
        job = make_job(job_id=1, procs=1, req_mem=32.0, used_mem=20.0)
        result = Simulation(
            make_workload([job], total_nodes=4),
            cluster,
            estimator=InfeasibleRetryEstimator(),
        ).run()

        assert result.rejected_jobs == []
        assert result.n_completed == 1
        summary = result.summaries[0]
        assert summary.n_attempts == 2
        assert summary.n_resource_failures == 1
        # The retry ran at the original request, on a 32MB node.
        assert summary.final_requirement == 32.0
        assert summary.final_granted >= 20.0
        # The failed first attempt's waste is accounted on the job *and* in
        # the run totals (previously the job vanished while the waste stayed).
        assert summary.wasted_node_seconds > 0
        assert result.wasted_node_seconds == summary.wasted_node_seconds


class TestPolicyEstimatorInterplay:
    @pytest.mark.parametrize("policy_cls", [ShortestJobFirst, EasyBackfilling])
    def test_estimation_with_aggressive_policies(self, policy_cls, sim_trace):
        from repro.cluster import paper_cluster

        base = simulate(sim_trace, paper_cluster(24.0), policy=policy_cls(), seed=2)
        est = simulate(
            sim_trace,
            paper_cluster(24.0),
            estimator=SuccessiveApproximation(),
            policy=policy_cls(),
            seed=2,
        )
        assert est.n_completed == base.n_completed == len(sim_trace)
        # §3.1's conjecture: the benefit is not an FCFS artifact.
        assert utilization(est) >= utilization(base) * 0.95

    def test_backfilling_with_runtime_underestimates(self):
        # req_time below run_time breaks EASY's conservative assumption;
        # the engine must still complete every job (reservations may slip,
        # correctness may not).
        jobs = [
            make_job(
                job_id=i,
                submit_time=float(i),
                run_time=100.0,
                req_time=10.0,  # wild underestimate
                procs=8,
            )
            for i in range(10)
        ]
        result = simulate(make_workload(jobs), Cluster([(16, 32.0)]), policy=EasyBackfilling())
        assert result.n_completed == 10


class TestDegenerateWorkloads:
    def test_empty_workload(self):
        result = simulate(make_workload([]), mixed_cluster())
        assert result.n_jobs == 0
        assert result.makespan == 0.0

    def test_all_jobs_identical_instant(self):
        jobs = [make_job(job_id=i, submit_time=0.0, procs=8) for i in range(10)]
        result = simulate(make_workload(jobs), Cluster([(8, 32.0)]))
        assert result.n_completed == 10
        # Strictly serialized: end-to-end takes 10 runtimes.
        assert result.makespan == pytest.approx(1000.0)

    def test_single_node_jobs(self):
        jobs = [make_job(job_id=i, submit_time=0.0, procs=1) for i in range(8)]
        result = simulate(make_workload(jobs), Cluster([(8, 32.0)]))
        assert all(s.start_time == 0.0 for s in result.summaries)

    def test_zero_used_memory_forbidden_by_job_validation(self):
        with pytest.raises(ValueError):
            make_job(used_mem=0.0)

    def test_late_binding_off_still_completes(self, sim_trace):
        from repro.cluster import paper_cluster

        result = Simulation(
            sim_trace,
            paper_cluster(24.0),
            estimator=SuccessiveApproximation(),
            failure_model=FailureModel(rng=0),
            late_binding=False,
        ).run()
        assert result.n_completed == len(sim_trace)


class TestSerialProbingUnderLoad:
    @settings(max_examples=10, deadline=None)
    @given(unique_jobs_strategy(min_size=5, max_size=30))
    def test_probing_toggle_conserves_jobs(self, jobs):
        for probing in (True, False):
            cluster = mixed_cluster()
            result = simulate(
                make_workload(jobs),
                cluster,
                estimator=SuccessiveApproximation(serial_probing=probing),
                seed=0,
            )
            assert result.n_completed + len(result.rejected_jobs) == len(jobs)
            assert cluster.free_nodes == cluster.total_nodes
