"""Similarity key functions."""

import pytest

from repro.similarity.keys import (
    by_job_id,
    by_user_app,
    by_user_app_reqmem,
    make_key_function,
)
from tests.conftest import make_job


class TestBuiltinKeys:
    def test_paper_key(self):
        job = make_job(user_id=3, app_id=7, req_mem=32.0)
        assert by_user_app_reqmem(job) == (3, 7, 32.0)

    def test_paper_key_distinguishes_req_mem(self):
        a = make_job(user_id=3, app_id=7, req_mem=32.0)
        b = make_job(user_id=3, app_id=7, req_mem=16.0, used_mem=4.0)
        assert by_user_app_reqmem(a) != by_user_app_reqmem(b)

    def test_user_app_key_ignores_req_mem(self):
        a = make_job(user_id=3, app_id=7, req_mem=32.0)
        b = make_job(user_id=3, app_id=7, req_mem=16.0, used_mem=4.0)
        assert by_user_app(a) == by_user_app(b)

    def test_job_id_key(self):
        assert by_job_id(make_job(job_id=42)) == 42


class TestMakeKeyFunction:
    def test_reproduces_paper_key(self):
        fn = make_key_function(["user", "app", "req_mem"])
        job = make_job(user_id=1, app_id=2, req_mem=24.0, used_mem=4.0)
        assert fn(job) == by_user_app_reqmem(job)

    def test_all_named_fields(self):
        fn = make_key_function(
            ["user", "group", "app", "req_mem", "req_time", "procs", "job_id"]
        )
        job = make_job()
        key = fn(job)
        assert len(key) == 7

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown similarity field"):
            make_key_function(["user", "nope"])

    def test_empty_fields_rejected(self):
        with pytest.raises(ValueError):
            make_key_function([])

    def test_name_reflects_fields(self):
        assert make_key_function(["user", "app"]).__name__ == "by_user_app"

    def test_keys_are_hashable(self):
        fn = make_key_function(["user", "req_mem"])
        {fn(make_job())}  # must not raise
