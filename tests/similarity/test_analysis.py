"""Group-quality analyses (Figures 3 and 4)."""

import numpy as np
import pytest

from repro.similarity.analysis import (
    gain_vs_range,
    group_size_distribution,
    similarity_report,
)
from tests.conftest import make_job, make_workload


def grouped_workload():
    """Three groups: sizes 1, 2, and 12 (one crossing the >=10 threshold)."""
    jobs = [make_job(job_id=1, user_id=1, app_id=1)]
    jobs += [make_job(job_id=10 + i, user_id=2, app_id=1) for i in range(2)]
    jobs += [
        make_job(job_id=100 + i, user_id=3, app_id=1, used_mem=4.0 + 0.1 * i)
        for i in range(12)
    ]
    return make_workload(jobs, total_nodes=1024)


class TestGroupSizeDistribution:
    def test_counts(self):
        dist = group_size_distribution(grouped_workload())
        assert dist.n_groups == 3
        assert dist.n_jobs == 15
        assert dist.sizes.tolist() == [1, 2, 12]

    def test_job_fractions_sum_to_one(self):
        dist = group_size_distribution(grouped_workload())
        assert dist.job_fraction.sum() == pytest.approx(1.0)

    def test_fraction_of_groups_at_least(self):
        dist = group_size_distribution(grouped_workload())
        assert dist.fraction_of_groups_at_least(10) == pytest.approx(1 / 3)
        assert dist.fraction_of_groups_at_least(2) == pytest.approx(2 / 3)

    def test_fraction_of_jobs_at_least(self):
        dist = group_size_distribution(grouped_workload())
        assert dist.fraction_of_jobs_at_least(10) == pytest.approx(12 / 15)

    def test_excludes_full_machine_jobs(self):
        w = grouped_workload()
        w.jobs.append(make_job(job_id=999, procs=1024, user_id=9))
        dist = group_size_distribution(w, exclude_full_machine=True)
        assert dist.n_jobs == 15
        dist_all = group_size_distribution(w, exclude_full_machine=False)
        assert dist_all.n_jobs == 16

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            group_size_distribution(make_workload([]))

    def test_format_table_mentions_key_stats(self):
        table = group_size_distribution(grouped_workload()).format_table()
        assert "3 groups" in table


class TestGainVsRange:
    def test_only_groups_above_threshold(self):
        points = gain_vs_range(grouped_workload(), min_group_size=10)
        assert len(points) == 1
        assert points[0].n_jobs == 12

    def test_axes_definitions(self):
        points = gain_vs_range(grouped_workload(), min_group_size=10)
        p = points[0]
        # used: 4.0 .. 5.1, requested 32
        assert p.similarity_range == pytest.approx(5.1 / 4.0)
        assert p.potential_gain == pytest.approx(32.0 / 5.1)

    def test_threshold_one_includes_everything(self):
        points = gain_vs_range(grouped_workload(), min_group_size=1)
        assert len(points) == 3


class TestSimilarityReport:
    def test_report_on_synthetic_trace(self, small_trace):
        report = similarity_report(small_trace)
        assert report.n_groups > 100
        # The calibrated trace keeps the paper's structural properties.
        assert report.frac_groups_ge_10 == pytest.approx(0.194, abs=0.07)
        assert report.frac_jobs_in_ge_10 == pytest.approx(0.83, abs=0.1)
        assert report.median_similarity_range < 1.5
        assert report.frac_high_gain_groups > 0.0

    def test_format_report(self, small_trace):
        text = similarity_report(small_trace).format_report()
        assert "9885" in text  # paper reference shown
        assert "similarity groups" in text

    def test_coarser_key_gives_fewer_groups(self, small_trace):
        from repro.similarity.keys import by_user_app, by_user_app_reqmem

        fine = similarity_report(small_trace, by_user_app_reqmem)
        coarse = similarity_report(small_trace, by_user_app)
        assert coarse.n_groups <= fine.n_groups
