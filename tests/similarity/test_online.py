"""Online similarity-group identification (§4 future work)."""

import pytest

from repro.cluster import paper_cluster
from repro.cluster.ladder import CapacityLadder
from repro.core import SuccessiveApproximation
from repro.core.base import Feedback
from repro.similarity.keys import by_user_app, by_user_app_reqmem, make_key_function
from repro.core.online import OnlineSimilarityEstimator
from repro.similarity.online import AdaptiveKey
from repro.sim import simulate, utilization
from tests.conftest import make_job


class TestAdaptiveKey:
    def test_starts_at_coarsest_level(self):
        key = AdaptiveKey()
        job = make_job(user_id=1, app_id=2, req_mem=32.0)
        assert key(job)[0] == 0  # depth 0

    def test_tight_group_never_splits(self):
        key = AdaptiveKey(split_range=1.5, min_observations=3)
        job = make_job(user_id=1)
        for used in (8.0, 8.5, 8.2, 8.4, 8.1):
            key.observe_usage(job, used)
        assert not key.is_split(job)
        assert key.n_splits == 0

    def test_loose_group_splits(self):
        key = AdaptiveKey(split_range=1.5, min_observations=3)
        a = make_job(job_id=1, user_id=1, app_id=1, req_mem=32.0, used_mem=2.0)
        b = make_job(job_id=2, user_id=1, app_id=1, req_mem=16.0, used_mem=30.0)
        # Same coarse (user, app) group, usage spanning 15x.
        for job, used in ((a, 2.0), (b, 30.0), (a, 2.1), (b, 29.0)):
            key.observe_usage(job, used)
        assert key.is_split(a)
        # After the split, different requested memories land in different
        # fine groups.
        assert key(a) != key(b)
        assert key(a)[0] == 1

    def test_needs_min_observations(self):
        key = AdaptiveKey(split_range=1.2, min_observations=5)
        job = make_job(user_id=1)
        key.observe_usage(job, 1.0)
        key.observe_usage(job, 100.0)  # wildly loose, but only 2 samples
        assert not key.is_split(job)

    def test_split_exhausts_at_finest_level(self):
        key = AdaptiveKey(levels=(by_user_app,), split_range=1.2, min_observations=2)
        job = make_job(user_id=1)
        key.observe_usage(job, 1.0)
        key.observe_usage(job, 50.0)
        # Only one level: nothing finer to split into.
        assert not key.is_split(job)

    def test_three_level_chain(self):
        levels = (
            make_key_function(["user"]),
            make_key_function(["user", "app"]),
            make_key_function(["user", "app", "req_mem"]),
        )
        key = AdaptiveKey(levels=levels, split_range=1.3, min_observations=2)
        # Two apps of one user with very different usage -> split to level 1.
        a = make_job(job_id=1, user_id=1, app_id=1, used_mem=1.0)
        b = make_job(job_id=2, user_id=1, app_id=2, used_mem=20.0)
        for job, used in ((a, 1.0), (b, 20.0), (a, 1.0), (b, 20.0)):
            key.observe_usage(job, used)
        assert key(a)[0] == 1
        assert key(a) != key(b)

    def test_reset(self):
        key = AdaptiveKey(split_range=1.2, min_observations=2)
        job = make_job(user_id=1)
        key.observe_usage(job, 1.0)
        key.observe_usage(job, 10.0)
        key.reset()
        assert key.n_splits == 0
        assert not key.is_split(job)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveKey(levels=())
        with pytest.raises(ValueError):
            AdaptiveKey(split_range=1.0)
        with pytest.raises(ValueError):
            AdaptiveKey(min_observations=1)


class TestOnlineSimilarityEstimator:
    def test_routes_feedback_to_key(self):
        est = OnlineSimilarityEstimator(
            adaptive_key=AdaptiveKey(split_range=1.3, min_observations=2)
        )
        est.bind(CapacityLadder([8.0, 16.0, 32.0]))
        a = make_job(job_id=1, user_id=1, app_id=1, req_mem=32.0, used_mem=2.0)
        b = make_job(job_id=2, user_id=1, app_id=1, req_mem=16.0, used_mem=14.0)
        for job in (a, b, a, b):
            req = est.estimate(job)
            est.observe(
                Feedback(
                    job=job, succeeded=True, requirement=req, granted=32.0,
                    used=job.used_mem,
                )
            )
        assert est.adaptive_key.n_splits >= 1

    def test_inner_key_must_be_the_adaptive_key(self):
        adaptive = AdaptiveKey()
        foreign = SuccessiveApproximation()  # default key, not adaptive
        with pytest.raises(ValueError, match="key_fn"):
            OnlineSimilarityEstimator(adaptive_key=adaptive, inner=foreign)

    def test_end_to_end_beats_baseline(self):
        from repro.core import NoEstimation
        from repro.workload import drop_full_machine_jobs, lanl_cm5_like, scale_load

        trace = scale_load(
            drop_full_machine_jobs(lanl_cm5_like(n_jobs=2000, seed=0)), 0.8
        )
        base = simulate(trace, paper_cluster(24.0), estimator=NoEstimation(), seed=1)
        online = simulate(
            trace,
            paper_cluster(24.0),
            estimator=OnlineSimilarityEstimator(
                adaptive_key=AdaptiveKey(
                    levels=(by_user_app, by_user_app_reqmem),
                    split_range=1.5,
                    min_observations=4,
                )
            ),
            seed=1,
        )
        assert utilization(online) > utilization(base) * 1.15
        assert online.n_completed == len(trace)

    def test_reset_cascades(self):
        est = OnlineSimilarityEstimator()
        est.bind(CapacityLadder([32.0]))
        job = make_job()
        est.estimate(job)
        est.reset()
        assert est.adaptive_key.n_groups == 0
