"""Similarity-group construction: online index vs offline builder."""

import pytest
from hypothesis import given, settings

from repro.similarity.groups import GroupStats, SimilarityIndex, build_groups
from repro.similarity.keys import by_user_app_reqmem
from tests.conftest import make_job, unique_jobs_strategy


class TestGroupStats:
    def test_add_updates_extremes(self):
        stats = GroupStats(key="k")
        stats.add(make_job(used_mem=8.0, submit_time=10.0))
        stats.add(make_job(job_id=2, used_mem=2.0, submit_time=5.0))
        assert stats.n_jobs == 2
        assert stats.min_used == 2.0
        assert stats.max_used == 8.0
        assert stats.first_seen == 5.0
        assert stats.last_seen == 10.0

    def test_similarity_range_definition(self):
        stats = GroupStats(key="k")
        stats.add(make_job(used_mem=4.0))
        stats.add(make_job(job_id=2, used_mem=12.0))
        assert stats.similarity_range == pytest.approx(3.0)

    def test_potential_gain_definition(self):
        stats = GroupStats(key="k")
        stats.add(make_job(req_mem=32.0, used_mem=4.0))
        stats.add(make_job(job_id=2, req_mem=32.0, used_mem=8.0))
        # gain = requested / MAX used
        assert stats.potential_gain == pytest.approx(4.0)

    def test_mean_used(self):
        stats = GroupStats(key="k")
        stats.add(make_job(used_mem=2.0))
        stats.add(make_job(job_id=2, used_mem=6.0))
        assert stats.mean_used == pytest.approx(4.0)

    def test_empty_group_nan_metrics(self):
        stats = GroupStats(key="k")
        assert stats.similarity_range != stats.similarity_range  # NaN
        assert stats.potential_gain != stats.potential_gain


class TestSimilarityIndex:
    def test_lookup_creates_group_once(self):
        index = SimilarityIndex()
        job = make_job()
        key1, existed1 = index.lookup(job)
        key2, existed2 = index.lookup(job)
        assert key1 == key2
        assert not existed1
        assert existed2
        assert len(index) == 1

    def test_observe_accumulates(self):
        index = SimilarityIndex()
        index.observe(make_job(used_mem=2.0))
        stats = index.observe(make_job(job_id=2, used_mem=6.0))
        assert stats.n_jobs == 2

    def test_different_users_different_groups(self):
        index = SimilarityIndex()
        index.observe(make_job(user_id=1))
        index.observe(make_job(job_id=2, user_id=2))
        assert len(index) == 2

    def test_get_unknown_key(self):
        assert SimilarityIndex().get(("nope",)) is None

    def test_key_of_matches_lookup(self):
        index = SimilarityIndex()
        job = make_job()
        assert index.key_of(job) == index.lookup(job)[0]

    def test_contains(self):
        index = SimilarityIndex()
        job = make_job()
        assert index.key_of(job) not in index
        index.observe(job)
        assert index.key_of(job) in index

    def test_custom_key_function(self):
        index = SimilarityIndex(key_fn=lambda j: j.app_id)
        index.observe(make_job(app_id=1, user_id=1))
        index.observe(make_job(job_id=2, app_id=1, user_id=2))
        assert len(index) == 1


class TestOfflineOnlineEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(unique_jobs_strategy(min_size=1, max_size=30))
    def test_build_groups_equals_incremental_observation(self, jobs):
        offline = build_groups(jobs)
        index = SimilarityIndex()
        for job in jobs:
            index.observe(job)
        online = {g.key: g for g in index.groups()}
        assert offline.keys() == online.keys()
        for key in offline:
            a, b = offline[key], online[key]
            assert a.n_jobs == b.n_jobs
            assert a.min_used == b.min_used
            assert a.max_used == b.max_used

    @settings(max_examples=30, deadline=None)
    @given(unique_jobs_strategy(min_size=1, max_size=30))
    def test_groups_partition_the_jobs(self, jobs):
        groups = build_groups(jobs)
        assert sum(g.n_jobs for g in groups.values()) == len(jobs)
        keys = {by_user_app_reqmem(j) for j in jobs}
        assert set(groups) == keys

    @settings(max_examples=30, deadline=None)
    @given(unique_jobs_strategy(min_size=1, max_size=30))
    def test_extremes_bound_usage(self, jobs):
        groups = build_groups(jobs)
        for job in jobs:
            g = groups[by_user_app_reqmem(job)]
            assert g.min_used <= job.used_mem <= g.max_used
