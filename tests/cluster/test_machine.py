"""Machine records."""

import pytest

from repro.cluster.machine import Machine


class TestMachine:
    def test_basic(self):
        m = Machine(machine_id=1, mem=32.0)
        assert m.capacity() == 32.0
        assert m.capacity("mem") == 32.0

    def test_extra_resources(self):
        m = Machine(machine_id=1, mem=32.0, resources={"disk": 2048.0})
        assert m.capacity("disk") == 2048.0

    def test_unknown_resource(self):
        m = Machine(machine_id=1, mem=32.0)
        with pytest.raises(KeyError, match="disk"):
            m.capacity("disk")

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            Machine(machine_id=1, mem=0.0)

    def test_invalid_extra_resource(self):
        with pytest.raises(ValueError):
            Machine(machine_id=1, mem=32.0, resources={"disk": -1.0})

    def test_frozen(self):
        m = Machine(machine_id=1, mem=32.0)
        with pytest.raises(Exception):
            m.mem = 16.0  # type: ignore[misc]
