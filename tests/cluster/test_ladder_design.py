"""Multi-tier ladder design optimizer (generalized Figure 8 tool)."""

import pytest

from repro.cluster.builder import design_ladder, evaluate_ladder
from tests.conftest import make_job, make_workload


def trace_two_populations():
    """Heavy 32MB requesters using ~4MB, plus genuine 28MB users."""
    jobs = [
        make_job(
            job_id=i,
            submit_time=float(i),
            run_time=100.0,
            procs=32,
            req_mem=32.0,
            used_mem=4.0,
            user_id=i % 5,
        )
        for i in range(40)
    ]
    jobs += [
        make_job(
            job_id=100 + i,
            submit_time=float(i),
            run_time=100.0,
            procs=32,
            req_mem=32.0,
            used_mem=28.0,
            user_id=10 + i % 3,
        )
        for i in range(10)
    ]
    return make_workload(jobs)


class TestEvaluateLadder:
    def test_homogeneous_always_feasible(self):
        design = evaluate_ladder(trace_two_populations(), [32.0], 1024)
        assert design.sustainable_load > 0
        assert design.levels == (32.0,)

    def test_demand_fractions_sum_to_one_when_servable(self):
        design = evaluate_ladder(trace_two_populations(), [16.0, 32.0], 1024)
        assert sum(f for _, f in design.demand_by_level) == pytest.approx(1.0)

    def test_low_tier_attracts_reducible_demand(self):
        design = evaluate_ladder(trace_two_populations(), [16.0, 32.0], 1024)
        demand = dict(design.demand_by_level)
        # The 4MB users settle on the 16MB tier; the 28MB users stay on 32.
        assert demand[16.0] == pytest.approx(0.8)
        assert demand[32.0] == pytest.approx(0.2)

    def test_unreachable_tier_gets_no_demand(self):
        # 15MB tier is behind the alpha wall for 32MB requests (32/2 = 16).
        design = evaluate_ladder(trace_two_populations(), [15.0, 32.0], 1024)
        demand = dict(design.demand_by_level)
        assert demand[15.0] == 0.0
        # All work lands on half the nodes: sustainable load is poor.
        balanced = evaluate_ladder(trace_two_populations(), [16.0, 32.0], 1024)
        assert design.sustainable_load < balanced.sustainable_load

    def test_infeasible_usage_zeroes_the_design(self):
        w = make_workload([make_job(req_mem=32.0, used_mem=30.0, procs=8)])
        design = evaluate_ladder(w, [16.0], 1024)
        assert design.sustainable_load == 0.0

    def test_validation(self):
        w = trace_two_populations()
        with pytest.raises(ValueError):
            evaluate_ladder(w, [], 1024)
        with pytest.raises(ValueError):
            evaluate_ladder(w, [32.0], 0)
        with pytest.raises(ValueError):
            evaluate_ladder(make_workload([]), [32.0], 1024)


class TestDesignLadder:
    def test_ranks_by_sustainable_load(self):
        designs = design_ladder(
            trace_two_populations(),
            candidate_levels=[8.0, 15.0, 16.0, 24.0, 32.0],
            n_tiers=2,
            total_nodes=1024,
        )
        loads = [d.sustainable_load for d in designs]
        assert loads == sorted(loads, reverse=True)

    def test_best_design_beats_alpha_walled_one(self):
        designs = design_ladder(
            trace_two_populations(),
            candidate_levels=[15.0, 16.0, 32.0],
            n_tiers=2,
            total_nodes=1024,
        )
        by_levels = {d.levels: d for d in designs}
        assert (
            by_levels[(16.0, 32.0)].sustainable_load
            > by_levels[(15.0, 32.0)].sustainable_load
        )

    def test_must_include_max(self):
        designs = design_ladder(
            trace_two_populations(),
            candidate_levels=[16.0, 24.0, 32.0],
            n_tiers=2,
            total_nodes=1024,
        )
        assert all(32.0 in d.levels for d in designs)

    def test_all_subsets_without_max_constraint(self):
        designs = design_ladder(
            trace_two_populations(),
            candidate_levels=[16.0, 24.0, 32.0],
            n_tiers=2,
            total_nodes=1024,
            must_include_max=False,
        )
        assert len(designs) == 3  # C(3,2)

    def test_invalid_n_tiers(self):
        with pytest.raises(ValueError):
            design_ladder(trace_two_populations(), [32.0], n_tiers=2, total_nodes=64)

    def test_single_tier_search(self):
        designs = design_ladder(
            trace_two_populations(), [16.0, 32.0], n_tiers=1, total_nodes=64
        )
        assert designs[0].levels == (32.0,)
