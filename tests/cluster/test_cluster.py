"""Cluster allocation/release: correctness and invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Allocation, Cluster
from repro.cluster.machine import Machine


def paper_tiers():
    return [(512, 32.0), (512, 24.0)]


class TestConstruction:
    def test_totals(self):
        c = Cluster(paper_tiers())
        assert c.total_nodes == 1024
        assert c.free_nodes == 1024
        assert c.total_at_level(32.0) == 512
        assert c.total_at_level(24.0) == 512

    def test_merges_equal_tiers(self):
        c = Cluster([(100, 32.0), (28, 32.0)])
        assert c.total_at_level(32.0) == 128
        assert len(c.ladder) == 1

    def test_machines_materialized(self):
        c = Cluster([(3, 32.0), (2, 24.0)])
        machines = c.machines()
        assert len(machines) == 5
        assert all(isinstance(m, Machine) for m in machines)
        assert sorted(m.mem for m in machines) == [24.0, 24.0, 32.0, 32.0, 32.0]

    def test_unique_machine_ids(self):
        c = Cluster([(3, 32.0), (2, 24.0)])
        ids = [m.machine_id for m in c.machines()]
        assert len(set(ids)) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_bad_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            Cluster(paper_tiers(), strategy="magic")  # type: ignore[arg-type]

    def test_bad_tier_rejected(self):
        with pytest.raises(ValueError):
            Cluster([(0, 32.0)])
        with pytest.raises(ValueError):
            Cluster([(4, -1.0)])


class TestQueries:
    def test_free_with_capacity(self):
        c = Cluster(paper_tiers())
        assert c.free_with_capacity(32.0) == 512
        assert c.free_with_capacity(24.0) == 1024
        assert c.free_with_capacity(24.1) == 512
        assert c.free_with_capacity(33.0) == 0

    def test_fits_ignores_current_usage(self):
        c = Cluster([(4, 32.0)])
        c.allocate(4, 1.0)
        assert c.free_nodes == 0
        assert c.fits(4, 32.0)
        assert not c.fits(5, 32.0)

    def test_can_allocate_respects_usage(self):
        c = Cluster([(4, 32.0)])
        assert c.can_allocate(4, 32.0)
        c.allocate(2, 1.0)
        assert not c.can_allocate(3, 32.0)

    def test_nonpositive_counts_rejected(self):
        c = Cluster(paper_tiers())
        with pytest.raises(ValueError):
            c.can_allocate(0, 32.0)
        with pytest.raises(ValueError):
            c.allocate(-1, 32.0)


class TestAllocation:
    def test_best_fit_prefers_smallest_adequate(self):
        c = Cluster(paper_tiers(), strategy="best_fit")
        alloc = c.allocate(10, 8.0)
        assert alloc.counts == {24.0: 10}

    def test_best_fit_spills_upward(self):
        c = Cluster([(4, 24.0), (4, 32.0)], strategy="best_fit")
        alloc = c.allocate(6, 8.0)
        assert alloc.counts == {24.0: 4, 32.0: 2}
        assert alloc.min_capacity == 24.0

    def test_worst_fit_prefers_largest(self):
        c = Cluster(paper_tiers(), strategy="worst_fit")
        alloc = c.allocate(10, 8.0)
        assert alloc.counts == {32.0: 10}

    def test_first_fit_uses_declaration_order(self):
        c = Cluster([(4, 32.0), (4, 24.0)], strategy="first_fit")
        alloc = c.allocate(2, 8.0)
        assert alloc.counts == {32.0: 2}

    def test_requirement_respected(self):
        c = Cluster(paper_tiers())
        alloc = c.allocate(600, 30.0)
        assert alloc is None  # only 512 nodes have >= 30MB
        alloc = c.allocate(512, 30.0)
        assert alloc.min_capacity == 32.0

    def test_failed_allocation_changes_nothing(self):
        c = Cluster(paper_tiers())
        before = c.snapshot_free()
        assert c.allocate(2000, 1.0) is None
        assert c.snapshot_free() == before

    def test_allocation_reduces_free_counts(self):
        c = Cluster(paper_tiers())
        c.allocate(100, 24.0)
        assert c.free_nodes == 924

    def test_satisfies(self):
        alloc = Allocation(counts={24.0: 3, 32.0: 2}, requirement=20.0)
        assert alloc.satisfies(24.0)
        assert not alloc.satisfies(24.5)


class TestRelease:
    def test_release_restores(self):
        c = Cluster(paper_tiers())
        alloc = c.allocate(100, 24.0)
        c.release(alloc)
        assert c.free_nodes == 1024

    def test_double_release_detected(self):
        c = Cluster(paper_tiers())
        alloc = c.allocate(600, 1.0)
        c.release(alloc)
        with pytest.raises(ValueError, match="double release|exceed"):
            c.release(alloc)

    def test_foreign_allocation_detected(self):
        c = Cluster([(4, 32.0)])
        foreign = Allocation(counts={16.0: 1}, requirement=16.0)
        with pytest.raises(ValueError):
            c.release(foreign)

    def test_reset(self):
        c = Cluster(paper_tiers())
        c.allocate(100, 1.0)
        c.reset()
        assert c.free_nodes == 1024


class TestInvariants:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=20),
                st.floats(min_value=1.0, max_value=64.0, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_alloc_release_never_corrupts_counts(self, requests):
        c = Cluster([(16, 32.0), (16, 24.0), (16, 8.0)])
        live = []
        for i, (n, cap) in enumerate(requests):
            if live and i % 3 == 0:
                c.release(live.pop())
            alloc = c.allocate(n, cap)
            if alloc is not None:
                # Every allocated node satisfies the requirement.
                assert all(lvl >= cap for lvl in alloc.counts)
                assert alloc.n_nodes == n
                live.append(alloc)
            # Free counts stay within bounds at every step.
            for lvl in c.ladder.levels:
                assert 0 <= c.free_at_level(lvl) <= c.total_at_level(lvl)
        for alloc in live:
            c.release(alloc)
        assert c.free_nodes == c.total_nodes

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=48),
        st.floats(min_value=1.0, max_value=32.0, allow_nan=False),
        st.sampled_from(["best_fit", "worst_fit", "first_fit"]),
    )
    def test_every_strategy_respects_requirement(self, n, cap, strategy):
        c = Cluster([(16, 32.0), (16, 24.0), (16, 8.0)], strategy=strategy)
        alloc = c.allocate(n, cap)
        if alloc is not None:
            assert alloc.min_capacity >= cap
            assert alloc.n_nodes == n


class TestFaultAccounting:
    def test_fail_and_repair_roundtrip(self):
        c = Cluster(paper_tiers())
        c.fail_node(24.0)
        assert c.down_nodes == 1
        assert c.down_at_level(24.0) == 1
        assert c.free_at_level(24.0) == 511
        assert c.in_service_nodes == 1023
        assert c.in_service_by_level() == {24.0: 511, 32.0: 512}
        c.repair_node(24.0)
        assert c.down_nodes == 0
        assert c.free_nodes == 1024

    def test_fail_requires_a_free_node(self):
        c = Cluster([(2, 32.0)])
        c.allocate(2, 32.0)
        with pytest.raises(ValueError, match="free node"):
            c.fail_node(32.0)

    def test_repair_requires_a_downed_node(self):
        c = Cluster(paper_tiers())
        with pytest.raises(ValueError, match="repair"):
            c.repair_node(32.0)

    def test_down_nodes_not_allocatable_but_still_count_for_fits(self):
        c = Cluster([(4, 32.0)])
        c.fail_node(32.0)
        # A transient outage makes the job wait (cannot allocate now)...
        assert not c.can_allocate(4, 32.0)
        # ...but never makes it infeasible (the node will come back).
        assert c.fits(4, 32.0)

    def test_busy_count_excludes_down_nodes(self):
        c = Cluster([(4, 32.0)])
        c.allocate(2, 32.0)
        c.fail_node(32.0)
        assert c.busy_nodes == 2
        assert c.free_nodes == 1
        assert c.down_nodes == 1

    def test_release_invariant_accounts_for_down_nodes(self):
        c = Cluster([(4, 32.0)])
        alloc = c.allocate(2, 32.0)
        c.fail_node(32.0)
        c.release(alloc)
        # free (3) + down (1) = total: a second release must trip the
        # free <= total - down invariant.
        with pytest.raises(ValueError, match="exceed"):
            c.release(alloc)

    def test_reset_restores_downed_nodes(self):
        c = Cluster(paper_tiers())
        c.fail_node(32.0)
        c.reset()
        assert c.down_nodes == 0
        assert c.free_nodes == 1024
