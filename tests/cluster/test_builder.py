"""Cluster builders and the Figure 8 design tool.

``stable_level`` is checked against the paper's own worked examples — they
are the ground truth for how Algorithm 1's dynamics interact with a capacity
ladder.
"""

import pytest

from repro.cluster.builder import (
    best_second_tier,
    design_second_tier,
    homogeneous,
    paper_cluster,
    stable_level,
    two_tier,
)
from repro.cluster.ladder import CapacityLadder
from tests.conftest import make_job, make_workload


class TestConstructors:
    def test_homogeneous(self):
        c = homogeneous(1024, 32.0)
        assert c.total_nodes == 1024
        assert c.ladder.levels == (32.0,)

    def test_two_tier(self):
        c = two_tier(512, 32.0, 512, 24.0)
        assert c.total_at_level(32.0) == 512
        assert c.total_at_level(24.0) == 512

    def test_paper_cluster_default(self):
        c = paper_cluster()
        assert c.ladder.levels == (24.0, 32.0)

    def test_paper_cluster_homogeneous_at_32(self):
        c = paper_cluster(32.0)
        assert c.ladder.levels == (32.0,)
        assert c.total_nodes == 1024

    def test_paper_cluster_rejects_oversized_tier(self):
        with pytest.raises(ValueError):
            paper_cluster(33.0)
        with pytest.raises(ValueError):
            paper_cluster(0.0)


class TestStableLevel:
    """The paper's worked examples, §2.3 and §3.2."""

    def test_section_2_3_alpha_2_settles_on_24(self):
        # Jobs request 32MB, use 4MB; machines {32, 24, 4}; alpha=2:
        # the paper walks 32 -> (est 16, runs on 24) and notes the 4MB
        # machines are never reached because the next step overshoots.
        ladder = CapacityLadder([4.0, 24.0, 32.0])
        assert stable_level(32.0, 4.0, ladder, alpha=2.0) == 24.0

    def test_section_2_3_alpha_10_reaches_4mb(self):
        # Same class with alpha=10: 32 -> 3.2 -> rounds up to the 4MB machines.
        ladder = CapacityLadder([4.0, 24.0, 32.0])
        assert stable_level(32.0, 4.0, ladder, alpha=10.0) == 4.0

    def test_section_2_3_alpha_10_usage_5mb_reverts(self):
        # "problematic if the actual memory used was 5MB instead of 4MB,
        # because the estimation will revert back to 32MB"
        ladder = CapacityLadder([4.0, 24.0, 32.0])
        assert stable_level(32.0, 5.0, ladder, alpha=10.0) == 32.0

    def test_section_3_2_request_20_alpha_2_reaches_15mb(self):
        # Job requests 20MB, uses 10MB, machines {30, 15}: with alpha=2 the
        # job "could also be run on the machines with the 15MB memory".
        ladder = CapacityLadder([15.0, 30.0])
        assert stable_level(20.0, 10.0, ladder, alpha=2.0) == 15.0

    def test_section_3_2_request_20_alpha_1_2_stuck(self):
        # With alpha=1.2 the reduction 20/1.2=16.7 overshoots the 15MB tier.
        ladder = CapacityLadder([15.0, 30.0])
        assert stable_level(20.0, 10.0, ladder, alpha=1.2) == 30.0

    def test_figure_8_sixteen_mb_wall(self):
        # Two-tier {m, 32} with a 32MB request: the small tier is reachable
        # iff 32/alpha <= m.  With alpha=2, m=16 works and m=15 does not.
        assert stable_level(32.0, 4.0, CapacityLadder([16.0, 32.0]), 2.0) == 16.0
        assert stable_level(32.0, 4.0, CapacityLadder([15.0, 32.0]), 2.0) == 32.0

    def test_figure_7_trajectory_endpoint(self):
        # Requested 32, actual ~5.2 on the rich ladder: settles at 8MB.
        ladder = CapacityLadder([4.0, 8.0, 16.0, 24.0, 32.0])
        assert stable_level(32.0, 5.2, ladder, alpha=2.0) == 8.0

    def test_usage_above_every_level(self):
        assert stable_level(32.0, 40.0, CapacityLadder([24.0, 32.0]), 2.0) is None

    def test_usage_above_request_but_fits_ladder(self):
        # Violates the paper's assumption: the request rounds up and holds.
        assert stable_level(20.0, 25.0, CapacityLadder([15.0, 30.0]), 2.0) == 30.0

    def test_alpha_close_to_one_terminates(self):
        ladder = CapacityLadder([1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
        level = stable_level(32.0, 1.5, ladder, alpha=1.001)
        assert level is not None
        assert level >= 1.5

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            stable_level(32.0, 4.0, CapacityLadder([32.0]), alpha=0.0)


class TestDesignSecondTier:
    def make_trace(self):
        # 10 jobs requesting 32 using 4 (benefit when m >= 16),
        # 5 jobs requesting 32 using 20 (benefit only when m >= 20),
        # 5 jobs requesting 8 (already eligible below, never "benefit").
        jobs = (
            [make_job(job_id=i, req_mem=32.0, used_mem=4.0, procs=32) for i in range(10)]
            + [make_job(job_id=100 + i, req_mem=32.0, used_mem=20.0, procs=64) for i in range(5)]
            + [make_job(job_id=200 + i, req_mem=8.0, used_mem=2.0, procs=16) for i in range(5)]
        )
        return make_workload(jobs)

    def test_below_wall_no_benefit(self):
        choices = design_second_tier(self.make_trace(), [8.0], alpha=2.0)
        assert choices[0].benefiting_node_count == 0
        assert choices[0].blocked_by_alpha > 0

    def test_at_wall_benefit_appears(self):
        (choice,) = design_second_tier(self.make_trace(), [16.0], alpha=2.0)
        assert choice.benefiting_jobs == 10
        assert choice.benefiting_node_count == 320
        assert choice.oversized_usage == 5  # the 20MB users

    def test_larger_tier_catches_more(self):
        (choice,) = design_second_tier(self.make_trace(), [20.0], alpha=2.0)
        assert choice.benefiting_jobs == 15
        assert choice.benefiting_node_count == 320 + 320

    def test_monotone_in_band(self):
        choices = design_second_tier(self.make_trace(), [16.0, 20.0, 24.0], alpha=2.0)
        counts = [c.benefiting_node_count for c in choices]
        assert counts == sorted(counts)

    def test_best_second_tier(self):
        choices = design_second_tier(self.make_trace(), [8.0, 16.0, 20.0], alpha=2.0)
        assert best_second_tier(choices).second_tier_mem == 20.0

    def test_best_of_empty_rejected(self):
        with pytest.raises(ValueError):
            best_second_tier([])

    def test_candidate_above_first_tier_rejected(self):
        with pytest.raises(ValueError):
            design_second_tier(self.make_trace(), [40.0])
