"""Capacity ladder: the rounding operator of Algorithm 1 line 6."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.ladder import CapacityLadder

levels_strategy = st.lists(
    st.floats(min_value=0.5, max_value=128.0, allow_nan=False),
    min_size=1,
    max_size=8,
)


class TestConstruction:
    def test_sorted_unique(self):
        ladder = CapacityLadder([32.0, 24.0, 32.0, 4.0])
        assert ladder.levels == (4.0, 24.0, 32.0)

    def test_min_max(self):
        ladder = CapacityLadder([24.0, 32.0])
        assert ladder.min == 24.0
        assert ladder.max == 32.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CapacityLadder([])

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            CapacityLadder([0.0, 32.0])

    def test_contains(self):
        ladder = CapacityLadder([24.0, 32.0])
        assert 24.0 in ladder
        assert 16.0 not in ladder

    def test_len(self):
        assert len(CapacityLadder([1, 2, 3])) == 3


class TestRoundUp:
    def test_paper_example_alpha_10(self):
        # §2.3: with alpha=10, the estimate 3.2MB rounds up to the 4MB machines.
        ladder = CapacityLadder([4.0, 24.0, 32.0])
        assert ladder.round_up(3.2) == 4.0

    def test_exact_level_maps_to_itself(self):
        ladder = CapacityLadder([4.0, 24.0, 32.0])
        assert ladder.round_up(24.0) == 24.0

    def test_between_levels(self):
        ladder = CapacityLadder([4.0, 24.0, 32.0])
        assert ladder.round_up(16.0) == 24.0

    def test_above_max_is_none(self):
        assert CapacityLadder([32.0]).round_up(33.0) is None

    def test_below_min_rounds_to_min(self):
        assert CapacityLadder([4.0, 32.0]).round_up(0.1) == 4.0


class TestRoundDown:
    def test_basic(self):
        ladder = CapacityLadder([4.0, 24.0, 32.0])
        assert ladder.round_down(30.0) == 24.0
        assert ladder.round_down(4.0) == 4.0

    def test_below_min_is_none(self):
        assert CapacityLadder([4.0]).round_down(3.9) is None


class TestLevelsAtLeast:
    def test_subset(self):
        ladder = CapacityLadder([4.0, 24.0, 32.0])
        assert ladder.levels_at_least(16.0) == (24.0, 32.0)
        assert ladder.levels_at_least(4.0) == (4.0, 24.0, 32.0)
        assert ladder.levels_at_least(33.0) == ()


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(levels_strategy, st.floats(min_value=0.1, max_value=200.0, allow_nan=False))
    def test_round_up_is_lowest_adequate_level(self, levels, value):
        ladder = CapacityLadder(levels)
        result = ladder.round_up(value)
        adequate = [lvl for lvl in ladder.levels if lvl >= value]
        assert result == (min(adequate) if adequate else None)

    @settings(max_examples=50, deadline=None)
    @given(levels_strategy, st.floats(min_value=0.1, max_value=200.0, allow_nan=False))
    def test_round_up_down_bracket_value(self, levels, value):
        ladder = CapacityLadder(levels)
        up, down = ladder.round_up(value), ladder.round_down(value)
        if up is not None:
            assert up >= value
        if down is not None:
            assert down <= value
        if up is not None and down is not None:
            assert down <= up

    @settings(max_examples=50, deadline=None)
    @given(levels_strategy)
    def test_round_up_is_idempotent_on_levels(self, levels):
        ladder = CapacityLadder(levels)
        for lvl in ladder.levels:
            assert ladder.round_up(lvl) == lvl
