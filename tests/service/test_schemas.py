"""Wire-schema layer: spec round-trips, validation, keys, result docs."""

import math

import pytest

from repro.experiments.parallel import RunOutcome, SweepReport, run_sweep
from repro.experiments.specs import (
    ClusterSpec,
    EstimatorSpec,
    FaultSpec,
    RunSpec,
    WorkloadSpec,
)
from repro.service.schemas import (
    MAX_SPECS_PER_SUBMISSION,
    SchemaError,
    experiment_specs,
    outcome_to_dict,
    parse_submission,
    report_to_dict,
    spec_from_dict,
    spec_to_dict,
    sweep_key,
)


def sample_spec(**overrides):
    fields = dict(
        workload=WorkloadSpec(n_jobs=500, load=0.7),
        cluster=ClusterSpec(second_tier_mem=24.0),
        estimator=EstimatorSpec.make("successive", alpha=2.0, beta=0.5),
        seed=3,
        label="round/trip",
    )
    fields.update(overrides)
    return RunSpec(**fields)


class TestSpecRoundTrip:
    def test_round_trip_preserves_spec(self):
        spec = sample_spec()
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_round_trip_preserves_cache_key(self):
        spec = sample_spec()
        assert spec_from_dict(spec_to_dict(spec)).cache_key() == spec.cache_key()

    def test_round_trip_with_faults(self):
        spec = sample_spec(faults=FaultSpec(node_mtbf=5e7, spurious=0.05))
        restored = spec_from_dict(spec_to_dict(spec))
        assert restored == spec
        assert restored.faults.enabled

    def test_empty_document_is_all_defaults(self):
        assert spec_from_dict({}) == RunSpec(workload=WorkloadSpec())

    def test_kwargs_accepted_as_mapping_or_pairs(self):
        as_map = spec_from_dict(
            {"estimator": {"name": "successive", "kwargs": {"alpha": 2.0}}}
        )
        as_pairs = spec_from_dict(
            {"estimator": {"name": "successive", "kwargs": [["alpha", 2.0]]}}
        )
        assert as_map == as_pairs

    @pytest.mark.parametrize(
        "doc",
        [
            "not an object",
            {"bogus": 1},
            {"workload": {"bogus": 1}},
            {"workload": "nope"},
            {"estimator": {"name": "no-such-estimator"}},
            {"policy": {"name": "no-such-policy"}},
            {"estimator": {"name": "successive", "kwargs": {"alpha": [1, 2]}}},
            {"estimator": {"name": "successive", "kwargs": [["alpha"]]}},
            {"faults": {"node_mtbf": -5.0}},
            {"workload": {"source": "swf", "trace_path": "/etc/passwd"}},
        ],
    )
    def test_rejects_bad_documents(self, doc):
        with pytest.raises(SchemaError):
            spec_from_dict(doc)


class TestSubmission:
    def test_explicit_specs(self):
        specs, experiment = parse_submission(
            {"specs": [spec_to_dict(sample_spec())]}
        )
        assert specs == [sample_spec()]
        assert experiment is None

    def test_named_experiment(self):
        specs, experiment = parse_submission(
            {"experiment": "fig8", "config": {"n_jobs": 200, "mems": [8, 24]}}
        )
        assert experiment == "fig8"
        # Two estimator variants (none / successive) per memory size.
        assert len(specs) == 4
        assert {s.cluster.second_tier_mem for s in specs} == {8.0, 24.0}

    def test_faults_experiment_wire_mtbfs(self):
        # 0 / null mean "clean" on the wire (JSON has no Infinity).
        specs, _ = parse_submission(
            {"experiment": "faults", "config": {"n_jobs": 200, "mtbfs": [0, 2e7]}}
        )
        assert len(specs) == 8
        assert sum(1 for s in specs if not s.faults.enabled) == 4

    @pytest.mark.parametrize(
        "doc",
        [
            {},
            {"specs": [], "experiment": "fig5"},
            {"specs": []},
            {"specs": "nope"},
            {"specs": [{}], "extra": 1},
            {"experiment": "nope"},
            {"experiment": 7},
            {"experiment": "fig5", "config": {"bogus": 1}},
            {"experiment": "fig5", "config": {"policy": "sjf"}},
        ],
    )
    def test_rejects_bad_submissions(self, doc):
        with pytest.raises(SchemaError):
            parse_submission(doc)

    def test_spec_count_cap(self):
        doc = {"specs": [{}] * (MAX_SPECS_PER_SUBMISSION + 1)}
        with pytest.raises(SchemaError, match="too many"):
            parse_submission(doc)

    def test_unknown_experiment_lists_known(self):
        with pytest.raises(SchemaError, match="fig5"):
            experiment_specs("fig99", {})


class TestSweepKey:
    def test_deterministic(self):
        specs = [sample_spec(seed=s) for s in (0, 1)]
        assert sweep_key(specs) == sweep_key(list(specs))

    def test_order_sensitive(self):
        a, b = sample_spec(seed=0), sample_spec(seed=1)
        assert sweep_key([a, b]) != sweep_key([b, a])

    def test_differs_across_grids(self):
        assert sweep_key([sample_spec()]) != sweep_key(
            [sample_spec(), sample_spec(seed=9)]
        )


class TestResultDocuments:
    def test_report_round_trips_through_json(self):
        import json

        spec = RunSpec(workload=WorkloadSpec(n_jobs=200, load=0.5))
        report = run_sweep([spec])
        doc = json.loads(json.dumps(report_to_dict(report)))
        assert doc["n_runs"] == 1
        assert doc["outcomes"][0]["point"]["utilization"] > 0
        assert doc["profile"]["n_executed"] == 1

    def test_infinite_runs_per_second_is_null(self):
        spec = RunSpec(workload=WorkloadSpec(n_jobs=200, load=0.5))
        outcome = RunOutcome(spec=spec, point=None, cached=True)
        report = SweepReport(outcomes=[outcome], wall_time=0.0, max_workers=1)
        assert math.isinf(report.runs_per_second)
        assert report_to_dict(report)["runs_per_second"] is None

    def test_outcome_error_and_flags_serialized(self):
        spec = RunSpec(workload=WorkloadSpec(n_jobs=200))
        doc = outcome_to_dict(
            4, RunOutcome(spec=spec, point=None, error="boom", resumed=True)
        )
        assert doc["index"] == 4
        assert doc["error"] == "boom"
        assert doc["resumed"] and not doc["cached"]
        assert not doc["ok"]
        assert "point" not in doc
