"""EventLog fan-out semantics and the chunked-JSONL wire helpers."""

import asyncio
import json

import pytest

from repro.obs import TRACE_SCHEMA_VERSION, read_trace
from repro.service.streaming import (
    LAST_CHUNK,
    EventLog,
    encode_chunk,
    event_line,
)


class TestWireHelpers:
    def test_encode_chunk_frames_payload(self):
        assert encode_chunk(b"hello") == b"5\r\nhello\r\n"
        assert encode_chunk(b"x" * 26) == b"1A\r\n" + b"x" * 26 + b"\r\n"
        assert LAST_CHUNK == b"0\r\n\r\n"

    def test_event_line_is_versioned_jsonl(self):
        line = event_line({"event": "run_started", "run_id": "abc"})
        assert line.endswith(b"\n")
        doc = json.loads(line)
        assert doc["v"] == TRACE_SCHEMA_VERSION
        assert doc["event"] == "run_started"

    def test_event_lines_parse_with_read_trace(self):
        lines = [
            event_line({"event": "a"}).decode(),
            "not json at all\n",  # torn line: skipped, not fatal
            event_line({"event": "b"}).decode(),
        ]
        assert [d["event"] for d in read_trace(lines)] == ["a", "b"]


def run(coro):
    return asyncio.run(coro)


async def collect(aiter, n=None):
    out = []
    async for item in aiter:
        out.append(item)
        if n is not None and len(out) == n:
            break
    return out


class TestEventLog:
    def test_late_subscriber_replays_history(self):
        async def scenario():
            log = EventLog()
            log.publish({"event": "one"})
            log.publish({"event": "two"})
            log.close()
            return await collect(log.subscribe())

        events = run(scenario())
        assert [e["event"] for e in events] == ["one", "two"]

    def test_live_subscriber_sees_later_events(self):
        async def scenario():
            log = EventLog()
            log.publish({"event": "historic"})

            async def reader():
                return await collect(log.subscribe())

            task = asyncio.ensure_future(reader())
            await asyncio.sleep(0)  # let the reader drain history
            log.publish({"event": "live"})
            log.close()
            return await task

        events = run(scenario())
        assert [e["event"] for e in events] == ["historic", "live"]

    def test_multiple_subscribers_each_get_everything(self):
        async def scenario():
            log = EventLog()
            tasks = [
                asyncio.ensure_future(collect(log.subscribe()))
                for _ in range(3)
            ]
            await asyncio.sleep(0)
            for i in range(5):
                log.publish({"event": f"e{i}"})
            log.close()
            return await asyncio.gather(*tasks)

        streams = run(scenario())
        for events in streams:
            assert [e["event"] for e in events] == [f"e{i}" for i in range(5)]

    def test_publish_after_close_raises(self):
        log = EventLog()
        log.close()
        assert log.closed
        with pytest.raises(RuntimeError):
            log.publish({"event": "too-late"})

    def test_abandoned_subscriber_unregisters(self):
        async def scenario():
            log = EventLog()
            log.publish({"event": "one"})
            sub = log.subscribe()
            await collect(sub, n=1)
            await sub.aclose()  # client hung up mid-stream
            assert log._queues == []
            log.publish({"event": "two"})  # must not hit a dead queue
            return log.events

        events = run(scenario())
        assert len(events) == 2
