"""End-to-end service tests: a real server, real HTTP clients in threads.

The centerpiece is the concurrency contract: many clients submitting
overlapping sweeps at once get results bit-identical to a direct
:func:`run_sweep`, with each distinct sweep executing at most once and
``/metrics`` staying valid Prometheus text throughout.
"""

import http.client
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict

import pytest

from repro.experiments.cache import SweepCache
from repro.experiments.parallel import run_sweep
from repro.experiments.specs import EstimatorSpec, RunSpec, WorkloadSpec
from repro.obs import read_trace
from repro.service import ServiceConfig, ServiceThread
from repro.service.schemas import spec_to_dict
from repro.service.smoke import validate_metrics

N_JOBS = 150


def make_spec(load, estimator="none"):
    return RunSpec(
        workload=WorkloadSpec(n_jobs=N_JOBS, load=load),
        estimator=EstimatorSpec(name=estimator),
        label=f"{estimator}@{load:g}",
    )


def submission(specs):
    return {"specs": [spec_to_dict(s) for s in specs]}


def request(address, method, path, body=None, timeout=300):
    conn = http.client.HTTPConnection(*address, timeout=timeout)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def get_json(address, path):
    status, body = request(address, "GET", path)
    return status, json.loads(body)


@pytest.fixture
def server(tmp_path):
    config = ServiceConfig(port=0, cache=SweepCache(tmp_path / "cache"))
    with ServiceThread(config) as address:
        yield address


class TestEndpoints:
    def test_healthz(self, server):
        status, doc = get_json(server, "/healthz")
        assert status == 200
        assert doc["status"] == "ok"

    def test_unknown_path_is_404(self, server):
        assert request(server, "GET", "/nope")[0] == 404
        assert request(server, "GET", "/runs/doesnotexist")[0] == 404
        assert request(server, "GET", "/runs/doesnotexist/result")[0] == 404

    def test_wrong_method_is_405(self, server):
        assert request(server, "DELETE", "/runs")[0] == 405
        assert request(server, "POST", "/healthz")[0] == 405

    def test_bad_submissions_are_400(self, server):
        assert request(server, "POST", "/runs", body={"specs": []})[0] == 400
        assert request(server, "POST", "/runs", body={})[0] == 400
        status, body = request(
            server,
            "POST",
            "/runs",
            body={"specs": [{"estimator": {"name": "bogus"}}]},
        )
        assert status == 400
        assert "bogus" in json.loads(body)["error"]

    def test_invalid_json_body_is_400(self, server):
        conn = http.client.HTTPConnection(*server, timeout=60)
        try:
            conn.request("POST", "/runs", body=b"{not json")
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_run_listing_and_status(self, server):
        specs = [make_spec(0.5)]
        status, body = request(server, "POST", "/runs", body=submission(specs))
        assert status == 201
        run_id = json.loads(body)["run_id"]

        status, doc = get_json(server, f"/runs/{run_id}/result?wait=1")
        assert status == 200

        status, doc = get_json(server, "/runs")
        assert status == 200
        assert [r["run_id"] for r in doc["runs"]] == [run_id]

        status, doc = get_json(server, f"/runs/{run_id}")
        assert status == 200
        assert doc["state"] == "completed"
        assert doc["n_done"] == 1

    def test_result_without_wait_is_409_while_running(self, server):
        specs = [make_spec(load) for load in (0.3, 0.5, 0.7, 0.9)]
        _, body = request(server, "POST", "/runs", body=submission(specs))
        run_id = json.loads(body)["run_id"]
        status, doc = get_json(server, f"/runs/{run_id}/result")
        # Either still executing (409 + hint) or already done (tiny sweep).
        assert status in (200, 409)
        if status == 409:
            assert "wait" in doc["error"]
            status, _ = get_json(server, f"/runs/{run_id}/result?wait=1")
            assert status == 200

    def test_event_stream_replay_after_completion(self, server):
        specs = [make_spec(0.5), make_spec(0.7)]
        _, body = request(server, "POST", "/runs", body=submission(specs))
        run_id = json.loads(body)["run_id"]
        request(server, "GET", f"/runs/{run_id}/result?wait=1")

        status, body = request(server, "GET", f"/runs/{run_id}/events")
        assert status == 200
        events = list(read_trace(body.decode().splitlines()))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_submitted"
        assert kinds[-1] == "run_completed"
        assert kinds.count("point_completed") == 2
        points = [e for e in events if e["event"] == "point_completed"]
        assert {p["index"] for p in points} == {0, 1}
        assert all(p["ok"] for p in points)

    def test_named_experiment_submission(self, server):
        _, body = request(
            server,
            "POST",
            "/runs",
            body={"experiment": "fig8", "config": {"n_jobs": N_JOBS, "mems": [24]}},
        )
        doc = json.loads(body)
        assert doc["experiment"] == "fig8"
        status, result = get_json(server, f"/runs/{doc['run_id']}/result?wait=1")
        assert status == 200
        assert result["result"]["n_runs"] == doc["n_specs"] == 2


class TestConcurrentClients:
    def test_eight_clients_overlapping_sweeps(self, server, tmp_path):
        """ISSUE acceptance: >= 8 concurrent clients, overlapping sweeps,
        bit-identical results, at-most-once execution, valid /metrics."""
        shared = make_spec(0.6, "successive")
        sweep_a = [make_spec(0.4), make_spec(0.8), shared]
        sweep_b = [make_spec(0.5, "successive"), shared, make_spec(0.9)]

        def client(i):
            sweep = sweep_a if i % 2 == 0 else sweep_b
            status, body = request(
                server, "POST", "/runs", body=submission(sweep)
            )
            assert status in (200, 201)
            run_id = json.loads(body)["run_id"]
            status, body = request(
                server, "GET", f"/runs/{run_id}/result?wait=1"
            )
            assert status == 200
            return run_id, json.loads(body)

        with ThreadPoolExecutor(max_workers=9) as pool:
            futures = [pool.submit(client, i) for i in range(8)]
            # While clients wait, /metrics must stay a valid scrape.
            scrapes = 0
            while not all(f.done() for f in futures):
                status, body = request(server, "GET", "/metrics")
                assert status == 200
                validate_metrics(body.decode())
                scrapes += 1
            results = [f.result() for f in futures]
        assert scrapes > 0

        # Two distinct sweeps; all clients of one sweep share one run.
        ids_a = {rid for i, (rid, _) in enumerate(results) if i % 2 == 0}
        ids_b = {rid for i, (rid, _) in enumerate(results) if i % 2 == 1}
        assert len(ids_a) == len(ids_b) == 1
        assert ids_a != ids_b

        for i, (rid, doc) in enumerate(results):
            assert doc["n_executions"] == 1, "duplicate submission re-executed"
            assert doc["result"]["n_errors"] == 0

        # Submission counts are checked after every client has joined: a
        # fast sweep can hand an early client its result before the last
        # duplicate client has even submitted.
        for rid in ids_a | ids_b:
            _, doc = get_json(server, f"/runs/{rid}/result")
            assert doc["n_submissions"] == 4

        # Bit-identical to a direct, service-free run_sweep of each grid.
        for sweep, (_, doc) in ((sweep_a, results[0]), (sweep_b, results[1])):
            direct = run_sweep(sweep, cache=SweepCache(tmp_path / "direct"))
            expected = [asdict(o.point) for o in direct.outcomes]
            served = [o["point"] for o in doc["result"]["outcomes"]]
            assert served == expected

    def test_resubmission_after_completion_hits_cache(self, server, tmp_path):
        """A second server over the same cache dir answers the identical
        sweep wholly from cache: n_cache_hits == n_specs."""
        specs = [make_spec(0.5), make_spec(0.7, "successive")]
        _, body = request(server, "POST", "/runs", body=submission(specs))
        first = json.loads(body)
        request(server, "GET", f"/runs/{first['run_id']}/result?wait=1")

        config = ServiceConfig(port=0, cache=SweepCache(tmp_path / "cache"))
        with ServiceThread(config) as second:
            status, body = request(
                second, "POST", "/runs", body=submission(specs)
            )
            assert status == 201  # new registry: a new record...
            doc = json.loads(body)
            assert doc["run_id"] == first["run_id"]  # ...same identity
            status, body = request(
                second, "GET", f"/runs/{doc['run_id']}/result?wait=1"
            )
            assert status == 200
            result = json.loads(body)["result"]
            assert result["n_cache_hits"] == len(specs)  # nothing re-simulated
            assert result["profile"]["n_executed"] == 0
