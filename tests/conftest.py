"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

from typing import List, Optional, Sequence

import pytest
from hypothesis import strategies as st

from repro.cluster import Cluster, paper_cluster
from repro.workload import Workload, drop_full_machine_jobs, lanl_cm5_like, scale_load
from repro.workload.job import Job


def make_job(
    job_id: int = 1,
    submit_time: float = 0.0,
    run_time: float = 100.0,
    procs: int = 32,
    req_mem: float = 32.0,
    used_mem: float = 8.0,
    req_time: float = -1.0,
    user_id: int = 1,
    app_id: int = 1,
) -> Job:
    """A job with sensible defaults; override what the test cares about."""
    return Job(
        job_id=job_id,
        submit_time=submit_time,
        run_time=run_time,
        procs=procs,
        req_mem=req_mem,
        used_mem=used_mem,
        req_time=req_time,
        user_id=user_id,
        app_id=app_id,
    )


def make_workload(jobs: Sequence[Job], total_nodes: int = 1024, node_mem: float = 32.0) -> Workload:
    return Workload(list(jobs), total_nodes=total_nodes, node_mem=node_mem, name="test")


@pytest.fixture(scope="session")
def small_trace() -> Workload:
    """A calibrated synthetic trace, small enough for fast tests."""
    return lanl_cm5_like(n_jobs=4000, seed=0)


@pytest.fixture(scope="session")
def sim_trace(small_trace: Workload) -> Workload:
    """The small trace prepared as in §3.1: full-machine jobs removed,
    rescaled to a saturating offered load."""
    return scale_load(drop_full_machine_jobs(small_trace), 0.8)


@pytest.fixture()
def two_tier_cluster() -> Cluster:
    """The paper's Figure 5 cluster (fresh per test; clusters are stateful)."""
    return paper_cluster(24.0)


# ----------------------------------------------------------------- strategies
def job_strategy(
    max_procs: int = 64,
    mem_levels: Sequence[float] = (4.0, 8.0, 16.0, 24.0, 32.0),
) -> st.SearchStrategy[Job]:
    """Random valid jobs with used <= requested (the paper's assumption)."""

    def build(job_id, submit, run, procs, req_mem, frac_used, user, app):
        return Job(
            job_id=job_id,
            submit_time=submit,
            run_time=run,
            procs=procs,
            req_mem=req_mem,
            used_mem=max(req_mem * frac_used, 0.01),
            user_id=user,
            app_id=app,
        )

    return st.builds(
        build,
        job_id=st.integers(min_value=1, max_value=10_000),
        submit=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        run=st.floats(min_value=1, max_value=1e5, allow_nan=False),
        procs=st.integers(min_value=1, max_value=max_procs),
        req_mem=st.sampled_from(list(mem_levels)),
        frac_used=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        user=st.integers(min_value=0, max_value=20),
        app=st.integers(min_value=0, max_value=10),
    )


def unique_jobs_strategy(min_size: int = 1, max_size: int = 40) -> st.SearchStrategy[List[Job]]:
    """Lists of jobs with unique IDs (what a trace guarantees)."""

    def reid(jobs: List[Job]) -> List[Job]:
        return [
            Job(
                job_id=i + 1,
                submit_time=j.submit_time,
                run_time=j.run_time,
                procs=j.procs,
                req_mem=j.req_mem,
                used_mem=j.used_mem,
                req_time=j.req_time,
                user_id=j.user_id,
                group_id=j.group_id,
                app_id=j.app_id,
            )
            for i, j in enumerate(jobs)
        ]

    return st.lists(job_strategy(), min_size=min_size, max_size=max_size).map(reid)
