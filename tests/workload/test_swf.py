"""SWF reader/writer: format compliance and round-trip fidelity."""

import math

import pytest
from hypothesis import given, settings

from repro.workload.swf import read_swf, read_swf_text, write_swf, write_swf_text
from tests.conftest import make_job, make_workload, unique_jobs_strategy

SAMPLE = """\
; LANL CM5 sample
; MaxNodes: 1024
; MaxMemory: 32768
1 0 5 100 32 -1 8192 32 200 32768 1 3 1 7 -1 -1 -1 -1
2 50 -1 60 64 -1 4096 64 120 16384 1 4 1 2 -1 -1 -1 -1
"""


class TestReader:
    def test_parses_jobs_and_header(self):
        w, report = read_swf_text(SAMPLE)
        assert report.parsed_jobs == 2
        assert w.total_nodes == 1024
        assert w.node_mem == 32.0

    def test_memory_converted_to_mb(self):
        w, _ = read_swf_text(SAMPLE)
        assert w[0].used_mem == 8.0
        assert w[0].req_mem == 32.0
        assert w[1].req_mem == 16.0

    def test_fields_mapped(self):
        w, _ = read_swf_text(SAMPLE)
        job = w[0]
        assert job.job_id == 1
        assert job.run_time == 100.0
        assert job.procs == 32
        assert job.req_time == 200.0
        assert job.user_id == 3
        assert job.app_id == 7

    def test_skips_jobs_without_memory_by_default(self):
        text = "1 0 -1 100 32 -1 -1 32 200 32768 1 3 1 7 -1 -1 -1 -1\n"
        w, report = read_swf_text(text)
        assert len(w) == 0
        assert report.skipped_missing_fields == 1

    def test_keeps_memoryless_jobs_when_asked(self):
        text = "1 0 -1 100 32 -1 -1 32 200 -1 1 3 1 7 -1 -1 -1 -1\n"
        w, _ = read_swf_text(text, require_memory=False)
        assert len(w) == 1
        assert w[0].used_mem == 1.0  # placeholder

    def test_skips_malformed_lines(self):
        w, report = read_swf_text("not a swf line\n1 2 3\n")
        assert len(w) == 0
        assert report.skipped_malformed == 2

    def test_skips_jobs_without_runtime(self):
        text = "1 0 -1 -1 32 -1 8192 32 200 32768 0 3 1 7 -1 -1 -1 -1\n"
        _, report = read_swf_text(text)
        assert report.skipped_missing_fields == 1

    def test_uses_requested_procs_when_allocated_missing(self):
        text = "1 0 -1 100 -1 -1 8192 64 200 32768 1 3 1 7 -1 -1 -1 -1\n"
        w, _ = read_swf_text(text)
        assert w[0].procs == 64

    def test_report_summary_mentions_counts(self):
        _, report = read_swf_text(SAMPLE)
        assert "2 jobs kept" in report.summary()

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf", "NaN", "Infinity"])
    def test_non_finite_fields_rejected_as_malformed(self, bad):
        # Regression: "nan"/"inf" parse via float() and a NaN runtime slips
        # past every `run <= 0` guard (all NaN comparisons are False),
        # producing a Job with non-finite fields deep in the simulator.
        text = f"1 0 5 {bad} 32 -1 8192 32 200 32768 1 3 1 7 -1 -1 -1 -1\n"
        w, report = read_swf_text(text)
        assert len(w) == 0
        assert report.skipped_malformed == 1

    def test_non_finite_memory_rejected_as_malformed(self):
        text = "1 0 5 100 32 -1 inf 32 200 32768 1 3 1 7 -1 -1 -1 -1\n"
        w, report = read_swf_text(text)
        assert len(w) == 0
        assert report.skipped_malformed == 1


class TestWriter:
    def test_writes_header(self):
        w = make_workload([make_job()])
        text = write_swf_text(w, header_comments=["hello"])
        assert "; MaxNodes: 1024" in text
        assert "; hello" in text

    def test_eighteen_fields_per_line(self):
        w = make_workload([make_job()])
        data_lines = [l for l in write_swf_text(w).splitlines() if not l.startswith(";")]
        assert all(len(l.split()) == 18 for l in data_lines)


class TestRoundTrip:
    def test_simple_round_trip(self):
        original = make_workload(
            [make_job(job_id=1), make_job(job_id=2, submit_time=10.0, req_mem=16.0, used_mem=2.0)]
        )
        parsed, report = read_swf_text(write_swf_text(original))
        assert report.parsed_jobs == 2
        for a, b in zip(original, parsed):
            assert a.job_id == b.job_id
            assert math.isclose(a.submit_time, b.submit_time)
            assert math.isclose(a.req_mem, b.req_mem)
            assert math.isclose(a.used_mem, b.used_mem)

    def test_file_round_trip(self, tmp_path):
        original = make_workload([make_job()])
        path = tmp_path / "trace.swf"
        write_swf(original, path)
        parsed, report = read_swf(path)
        assert report.parsed_jobs == 1
        assert parsed[0].req_mem == original[0].req_mem

    @settings(max_examples=30, deadline=None)
    @given(unique_jobs_strategy(min_size=1, max_size=20))
    def test_round_trip_preserves_job_content(self, jobs):
        original = make_workload(jobs)
        parsed, report = read_swf_text(write_swf_text(original))
        assert report.parsed_jobs == len(original)
        for a, b in zip(original, parsed):
            assert a.job_id == b.job_id
            assert math.isclose(a.submit_time, b.submit_time, rel_tol=1e-12, abs_tol=1e-9)
            assert math.isclose(a.run_time, b.run_time, rel_tol=1e-12)
            assert a.procs == b.procs
            assert math.isclose(a.req_mem, b.req_mem, rel_tol=1e-12)
            assert math.isclose(a.used_mem, b.used_mem, rel_tol=1e-12)
            assert a.user_id == b.user_id
            assert a.app_id == b.app_id
