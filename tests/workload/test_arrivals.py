"""Arrival-process models and the generator's diurnal warp."""

import numpy as np
import pytest

from repro.util.units import SECONDS_PER_DAY
from repro.workload.arrivals import retime_diurnal, retime_poisson
from repro.workload.synthetic import SyntheticTraceConfig, _diurnal_warp, generate_trace
from tests.conftest import make_job, make_workload


def sample_workload(n=200, span=10 * SECONDS_PER_DAY):
    jobs = [
        make_job(job_id=i + 1, submit_time=span * i / n, run_time=100.0)
        for i in range(n)
    ]
    return make_workload(jobs)


class TestRetimePoisson:
    def test_preserves_jobs_and_count(self):
        w = sample_workload()
        p = retime_poisson(w, rng=0)
        assert len(p) == len(w)
        assert sorted(j.job_id for j in p) == sorted(j.job_id for j in w)
        assert {j.run_time for j in p} == {100.0}

    def test_times_within_duration(self):
        w = sample_workload()
        p = retime_poisson(w, duration=1000.0, rng=0)
        assert all(0 <= j.submit_time <= 1000.0 for j in p)

    def test_deterministic(self):
        w = sample_workload()
        a = retime_poisson(w, rng=5)
        b = retime_poisson(w, rng=5)
        assert [j.submit_time for j in a] == [j.submit_time for j in b]

    def test_interarrivals_look_exponential(self):
        w = sample_workload(n=5000)
        p = retime_poisson(w, duration=1e6, rng=0)
        gaps = np.diff([j.submit_time for j in p])
        # Exponential: std ~ mean.
        assert np.std(gaps) == pytest.approx(np.mean(gaps), rel=0.1)

    def test_empty_workload(self):
        w = make_workload([])
        assert retime_poisson(w, rng=0) is w


class TestRetimeDiurnal:
    def test_day_night_contrast(self):
        w = sample_workload(n=20000)
        d = retime_diurnal(w, duration=28 * SECONDS_PER_DAY, day_night_ratio=6.0, rng=0)
        hours = (np.array([j.submit_time for j in d]) % SECONDS_PER_DAY) / 3600
        day = np.mean((hours >= 8) & (hours < 20))
        # Daytime is half the clock but should carry much more than half
        # the arrivals at ratio 6 (expected 6/7 ~ 0.86).
        assert day > 0.75

    def test_weekend_suppression(self):
        w = sample_workload(n=20000)
        d = retime_diurnal(
            w, duration=28 * SECONDS_PER_DAY, weekend_factor=0.25, rng=0
        )
        dow = (np.array([j.submit_time for j in d]) // SECONDS_PER_DAY) % 7
        weekend = np.mean(dow >= 5)
        assert weekend < 2 / 7 * 0.7  # clearly below the uniform share

    def test_count_preserved(self):
        w = sample_workload()
        assert len(retime_diurnal(w, rng=0)) == len(w)

    def test_validation(self):
        w = sample_workload()
        with pytest.raises(ValueError):
            retime_diurnal(w, day_night_ratio=0.0, rng=0)
        with pytest.raises(ValueError):
            retime_diurnal(w, weekend_factor=0.0, rng=0)


class TestGeneratorDiurnalWarp:
    def test_warp_is_monotone(self):
        t = np.linspace(0, 14 * SECONDS_PER_DAY, 5000)
        warped = _diurnal_warp(t, 14 * SECONDS_PER_DAY, 4.0, 0.5)
        assert np.all(np.diff(warped) >= 0)
        assert warped[0] >= 0
        assert warped[-1] <= 14 * SECONDS_PER_DAY

    def test_warp_concentrates_daytime(self):
        rng = np.random.default_rng(0)
        t = rng.uniform(0, 28 * SECONDS_PER_DAY, size=50000)
        warped = _diurnal_warp(t, 28 * SECONDS_PER_DAY, 4.0, 1.0)
        hours = (warped % SECONDS_PER_DAY) / 3600
        day = np.mean((hours >= 8) & (hours < 20))
        assert day == pytest.approx(4 / 5, abs=0.05)  # 4x intensity over half the day

    def test_generator_diurnal_toggle(self):
        import dataclasses

        base = SyntheticTraceConfig.lanl_cm5(3000)
        flat = generate_trace(dataclasses.replace(base, diurnal=False), rng=0)
        cyc = generate_trace(dataclasses.replace(base, diurnal=True), rng=0)
        hours_cyc = (np.array([j.submit_time for j in cyc]) % SECONDS_PER_DAY) / 3600
        hours_flat = (np.array([j.submit_time for j in flat]) % SECONDS_PER_DAY) / 3600
        day_cyc = np.mean((hours_cyc >= 8) & (hours_cyc < 20))
        day_flat = np.mean((hours_flat >= 8) & (hours_flat < 20))
        assert day_cyc > day_flat + 0.15

    def test_group_clustering_survives_warp(self):
        # The warp is order-preserving, so group activity windows stay much
        # tighter than the uniform-spread alternative.
        import collections
        import dataclasses

        def median_group_span(w):
            by_group = collections.defaultdict(list)
            for j in w:
                if j.procs < 1024:
                    by_group[(j.user_id, j.app_id, j.req_mem)].append(j.submit_time)
            spans = [
                max(t) - min(t) for t in by_group.values() if len(t) >= 5
            ]
            return np.median(spans)

        # Needs a trace long enough that the 30-day group windows are small
        # relative to the duration (~4 months here).
        cfg = SyntheticTraceConfig.lanl_cm5(20_000)
        clustered = generate_trace(cfg, rng=0)
        spread = generate_trace(
            dataclasses.replace(cfg, cluster_in_time=False), rng=0
        )
        assert median_group_span(clustered) < 0.6 * median_group_span(spread)
