"""Temporal train/test splitting."""

import pytest

from repro.workload.splitting import split_by_time
from tests.conftest import make_job, make_workload


def linear_workload(n=100):
    return make_workload(
        [make_job(job_id=i + 1, submit_time=float(i * 10)) for i in range(n)]
    )


class TestSplitByTime:
    def test_partition_is_complete_and_disjoint(self):
        w = linear_workload()
        train, test = split_by_time(w, 0.6, rebase_test=False)
        ids = sorted(j.job_id for j in train) + sorted(j.job_id for j in test)
        assert sorted(ids) == [j.job_id for j in w]
        assert not set(j.job_id for j in train) & set(j.job_id for j in test)

    def test_split_is_temporal(self):
        train, test = split_by_time(linear_workload(), 0.5, rebase_test=False)
        assert max(j.submit_time for j in train) < min(j.submit_time for j in test)

    def test_fraction_respected(self):
        train, test = split_by_time(linear_workload(), 0.25)
        assert len(train) == pytest.approx(25, abs=2)

    def test_rebase_test(self):
        _, test = split_by_time(linear_workload(), 0.5, rebase_test=True)
        assert test[0].submit_time == 0.0

    def test_no_rebase(self):
        _, test = split_by_time(linear_workload(), 0.5, rebase_test=False)
        assert test[0].submit_time > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            split_by_time(linear_workload(), 0.0)
        with pytest.raises(ValueError):
            split_by_time(linear_workload(), 1.0)
        with pytest.raises(ValueError):
            split_by_time(make_workload([]), 0.5)

    def test_out_of_sample_regression_workflow(self, small_trace):
        # The intended use: fit the regression offline on the first half,
        # evaluate estimates on the unseen second half.
        from repro.cluster.ladder import CapacityLadder
        from repro.core import RegressionEstimator

        train, test = split_by_time(small_trace, 0.5)
        est = RegressionEstimator(min_samples=50)
        est.bind(CapacityLadder([24.0, 32.0]))
        est.fit(train)
        reduced = sum(1 for j in test.jobs[:200] if est.estimate(j) < j.req_mem)
        assert reduced > 0
