"""Workload transforms: load scaling, filtering, subsampling."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.transforms import (
    drop_full_machine_jobs,
    head,
    offered_load,
    scale_load,
    shift_to_zero,
)
from tests.conftest import make_job, make_workload, unique_jobs_strategy


class TestOfferedLoad:
    def test_simple_case(self):
        # Two jobs of 100s x 10 procs over a 1000s span on 10 nodes:
        # 2000 node-s / 10000 node-s = 0.2
        w = make_workload(
            [
                make_job(job_id=1, submit_time=0.0, run_time=100.0, procs=10),
                make_job(job_id=2, submit_time=1000.0, run_time=100.0, procs=10),
            ],
            total_nodes=10,
        )
        assert offered_load(w) == pytest.approx(0.2)

    def test_explicit_node_count_overrides(self):
        w = make_workload(
            [
                make_job(job_id=1, submit_time=0.0, run_time=100.0, procs=10),
                make_job(job_id=2, submit_time=1000.0, run_time=100.0, procs=10),
            ],
            total_nodes=10,
        )
        assert offered_load(w, total_nodes=20) == pytest.approx(0.1)

    def test_zero_span_is_infinite(self):
        w = make_workload([make_job()], total_nodes=10)
        assert offered_load(w) == float("inf")

    def test_requires_node_count(self):
        w = make_workload([make_job()], total_nodes=0)
        with pytest.raises(ValueError):
            offered_load(w)


class TestScaleLoad:
    def test_reaches_target(self):
        w = make_workload(
            [make_job(job_id=i, submit_time=100.0 * i, run_time=50.0, procs=8) for i in range(20)],
            total_nodes=64,
        )
        scaled = scale_load(w, 0.5)
        assert offered_load(scaled) == pytest.approx(0.5, rel=1e-9)

    def test_preserves_job_content(self):
        w = make_workload(
            [make_job(job_id=i, submit_time=10.0 * i) for i in range(5)], total_nodes=64
        )
        scaled = scale_load(w, 0.9)
        for a, b in zip(w, scaled):
            assert a.run_time == b.run_time
            assert a.procs == b.procs
            assert a.req_mem == b.req_mem

    def test_preserves_arrival_order(self):
        w = make_workload(
            [make_job(job_id=i, submit_time=7.0 * i) for i in range(10)], total_nodes=64
        )
        scaled = scale_load(w, 0.3)
        ids = [j.job_id for j in scaled]
        assert ids == sorted(ids)

    def test_first_arrival_fixed_point(self):
        w = make_workload(
            [make_job(job_id=1, submit_time=500.0), make_job(job_id=2, submit_time=600.0)],
            total_nodes=64,
        )
        scaled = scale_load(w, 0.4)
        assert scaled[0].submit_time == pytest.approx(500.0)

    @settings(max_examples=25, deadline=None)
    @given(unique_jobs_strategy(min_size=3, max_size=15), st.floats(min_value=0.1, max_value=3.0))
    def test_property_target_load_achieved(self, jobs, target):
        w = make_workload(jobs, total_nodes=128)
        if w.span <= 0 or not math.isfinite(offered_load(w)):
            # Degenerate: all jobs at the same instant, or a span so tiny
            # (denormal seconds) that the load overflows float64 — both are
            # unscalable and scale_load rejects them.
            return
        scaled = scale_load(w, target)
        assert offered_load(scaled) == pytest.approx(target, rel=1e-6)

    def test_rejects_zero_span(self):
        w = make_workload([make_job()], total_nodes=10)
        with pytest.raises(ValueError):
            scale_load(w, 0.5)


class TestShiftToZero:
    def test_shifts(self):
        w = make_workload(
            [make_job(job_id=1, submit_time=50.0), make_job(job_id=2, submit_time=80.0)]
        )
        shifted = shift_to_zero(w)
        assert shifted[0].submit_time == 0.0
        assert shifted[1].submit_time == 30.0

    def test_noop_when_already_zero(self):
        w = make_workload([make_job(submit_time=0.0)])
        assert shift_to_zero(w) is w


class TestDropFullMachine:
    def test_drops_only_full_machine(self):
        w = make_workload(
            [make_job(job_id=1, procs=512), make_job(job_id=2, procs=1024)],
            total_nodes=1024,
        )
        kept = drop_full_machine_jobs(w)
        assert [j.job_id for j in kept] == [1]

    def test_paper_preparation_on_synthetic(self, small_trace):
        kept = drop_full_machine_jobs(small_trace)
        assert len(small_trace) - len(kept) == 6  # the six 1024-node entries


class TestHead:
    def test_takes_first_n_by_arrival(self):
        w = make_workload(
            [make_job(job_id=i, submit_time=float(10 - i)) for i in range(1, 6)]
        )
        first = head(w, 2)
        assert [j.job_id for j in first] == [5, 4]

    def test_n_larger_than_trace(self):
        w = make_workload([make_job()])
        assert len(head(w, 100)) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            head(make_workload([make_job()]), -1)
