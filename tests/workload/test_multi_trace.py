"""Multi-resource workload generator."""

import pytest

from repro.workload.multi import (
    MultiTraceConfig,
    ResourceSpec,
    default_multi_cluster,
    generate_multi_trace,
)


class TestGenerate:
    def test_count_and_determinism(self):
        a = generate_multi_trace(MultiTraceConfig(n_jobs=100), rng=0)
        b = generate_multi_trace(MultiTraceConfig(n_jobs=100), rng=0)
        assert len(a) == 100
        assert [(j.submit_time, j.used["mem"]) for j in a] == [
            (j.submit_time, j.used["mem"]) for j in b
        ]

    def test_usage_never_exceeds_request(self):
        jobs = generate_multi_trace(MultiTraceConfig(n_jobs=300), rng=1)
        for job in jobs:
            for res in job.requested:
                assert job.used[res] <= job.requested[res] + 1e-9

    def test_group_structure(self):
        cfg = MultiTraceConfig(n_jobs=240, jobs_per_group=12)
        jobs = generate_multi_trace(cfg, rng=0)
        groups = {j.group for j in jobs}
        assert len(groups) <= 20
        # Same group => same usage (group-level ratios).
        by_group = {}
        for j in jobs:
            by_group.setdefault(j.group, set()).add(round(j.used["mem"], 9))
        assert all(len(usages) == 1 for usages in by_group.values())

    def test_over_provisioning_floor(self):
        spec = ResourceSpec(requested=10.0, ratio_floor=2.0, ratio_scale=0.5)
        cfg = MultiTraceConfig(n_jobs=100, resources={"mem": spec})
        jobs = generate_multi_trace(cfg, rng=0)
        assert all(j.used["mem"] <= 5.0 + 1e-9 for j in jobs)

    def test_custom_resources(self):
        cfg = MultiTraceConfig(
            n_jobs=50,
            resources={
                "mem": ResourceSpec(requested=16.0),
                "gpu": ResourceSpec(requested=4.0),
                "licenses": ResourceSpec(requested=2.0),
            },
        )
        jobs = generate_multi_trace(cfg, rng=0)
        assert set(jobs[0].requested) == {"mem", "gpu", "licenses"}

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiTraceConfig(n_jobs=0)
        with pytest.raises(ValueError):
            MultiTraceConfig(resources={})
        with pytest.raises(ValueError):
            ResourceSpec(requested=10.0, ratio_floor=0.5)


class TestDefaultCluster:
    def test_shape(self):
        cluster = default_multi_cluster()
        assert cluster.total_nodes == 128
        assert cluster.resources == ["disk", "mem"]

    def test_end_to_end_with_estimation(self):
        from repro.core.multi_resource import CoordinateDescentEstimator
        from repro.sim.multi import MultiSimulation

        jobs = generate_multi_trace(MultiTraceConfig(n_jobs=200), rng=0)
        base = MultiSimulation(jobs, default_multi_cluster(), seed=1).run()
        est = MultiSimulation(
            generate_multi_trace(MultiTraceConfig(n_jobs=200), rng=0),
            default_multi_cluster(),
            estimator=CoordinateDescentEstimator(alpha=2.0),
            seed=1,
        ).run()
        assert len(base.outcomes) == len(est.outcomes) == 200
        assert est.utilization >= base.utilization * 0.95
