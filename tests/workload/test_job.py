"""Job record and Workload container."""

import numpy as np
import pytest
from hypothesis import given

from repro.workload.job import Job, Workload, validate_overprovisioning_assumption
from tests.conftest import job_strategy, make_job, make_workload


class TestJobValidation:
    def test_valid_job(self):
        job = make_job()
        assert job.procs == 32

    def test_negative_submit_rejected(self):
        with pytest.raises(ValueError):
            make_job(submit_time=-1.0)

    def test_zero_runtime_rejected(self):
        with pytest.raises(ValueError):
            make_job(run_time=0.0)

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            make_job(procs=0)

    @pytest.mark.parametrize("field", ["req_mem", "used_mem"])
    def test_non_positive_memory_rejected(self, field):
        with pytest.raises(ValueError):
            make_job(**{field: 0.0})


class TestJobProperties:
    def test_overprovisioning_ratio(self):
        assert make_job(req_mem=32.0, used_mem=8.0).overprovisioning_ratio == 4.0

    def test_work(self):
        assert make_job(run_time=100.0, procs=32).work == 3200.0

    def test_runtime_estimate_prefers_req_time(self):
        assert make_job(run_time=100.0, req_time=500.0).runtime_estimate == 500.0

    def test_runtime_estimate_falls_back_to_run_time(self):
        assert make_job(run_time=100.0, req_time=-1.0).runtime_estimate == 100.0

    def test_with_submit_time_preserves_everything_else(self):
        job = make_job(submit_time=5.0, req_mem=24.0)
        moved = job.with_submit_time(99.0)
        assert moved.submit_time == 99.0
        assert moved.req_mem == 24.0
        assert moved.job_id == job.job_id

    def test_frozen(self):
        with pytest.raises(Exception):
            make_job().submit_time = 3.0  # type: ignore[misc]


class TestWorkload:
    def test_sorted_by_submit_time(self):
        jobs = [make_job(job_id=i, submit_time=t) for i, t in [(1, 30.0), (2, 10.0), (3, 20.0)]]
        w = make_workload(jobs)
        assert [j.job_id for j in w] == [2, 3, 1]

    def test_len_iter_getitem(self):
        w = make_workload([make_job(job_id=1), make_job(job_id=2, submit_time=1.0)])
        assert len(w) == 2
        assert [j.job_id for j in w] == [1, 2]
        assert w[1].job_id == 2

    def test_span(self):
        w = make_workload([make_job(job_id=1, submit_time=10.0), make_job(job_id=2, submit_time=110.0)])
        assert w.span == 100.0

    def test_span_empty(self):
        assert make_workload([]).span == 0.0

    def test_total_work(self):
        w = make_workload([make_job(run_time=10.0, procs=4), make_job(job_id=2, run_time=5.0, procs=2)])
        assert w.total_work == 50.0

    def test_filter(self):
        w = make_workload([make_job(job_id=1, procs=4), make_job(job_id=2, procs=1024)])
        small = w.filter(lambda j: j.procs < 1024)
        assert len(small) == 1 and small[0].job_id == 1
        assert small.total_nodes == w.total_nodes

    def test_map(self):
        w = make_workload([make_job(submit_time=5.0)])
        shifted = w.map(lambda j: j.with_submit_time(0.0))
        assert shifted[0].submit_time == 0.0

    def test_overprovisioning_ratios_clip_at_one(self):
        # Accounting noise: used > requested gets clipped to ratio 1.
        w = make_workload([make_job(req_mem=8.0, used_mem=16.0)])
        assert w.overprovisioning_ratios().tolist() == [1.0]

    def test_column(self):
        w = make_workload([make_job(procs=4), make_job(job_id=2, procs=8, submit_time=1.0)])
        assert w.column("procs").tolist() == [4, 8]

    @given(job_strategy())
    def test_single_job_workload_properties(self, job):
        w = make_workload([job])
        assert w.total_work == job.work
        assert w.overprovisioning_ratios()[0] >= 1.0


class TestAssumptionAudit:
    def test_flags_violations(self):
        good = make_job(job_id=1)
        bad = make_job(job_id=2, req_mem=4.0, used_mem=8.0)
        assert validate_overprovisioning_assumption([good, bad]) == [bad]

    def test_clean_trace(self):
        assert validate_overprovisioning_assumption([make_job()]) == []
