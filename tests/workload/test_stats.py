"""Over-provisioning statistics (the Figure 1 analyses)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.stats import (
    linear_fit,
    log_linear_fit,
    overprovisioning_histogram,
    overprovisioning_stats,
    ratio_at_least,
)
from tests.conftest import make_job, make_workload


def ratio_workload(ratios):
    """A workload with one job per requested/used ratio."""
    return make_workload(
        [
            make_job(job_id=i + 1, req_mem=32.0, used_mem=32.0 / r)
            for i, r in enumerate(ratios)
        ]
    )


class TestLinearFit:
    def test_exact_line(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        fit = linear_fit(x, 2.0 * x + 1.0)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_r_squared_decreases_with_noise(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 10, 100)
        clean = linear_fit(x, x)
        noisy = linear_fit(x, x + rng.normal(0, 3.0, size=100))
        assert noisy.r_squared < clean.r_squared

    def test_constant_y_has_r2_one(self):
        # Zero variance is perfectly explained by a flat line.
        fit = linear_fit([0.0, 1.0, 2.0], [5.0, 5.0, 5.0])
        assert fit.r_squared == 1.0
        assert fit.slope == pytest.approx(0.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [1.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            linear_fit([1.0, 2.0], [1.0])

    def test_predict(self):
        fit = linear_fit([0.0, 1.0], [0.0, 2.0])
        assert fit.predict(np.array([3.0]))[0] == pytest.approx(6.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=-5, max_value=5),
        st.floats(min_value=-10, max_value=10),
    )
    def test_property_recovers_exact_lines(self, slope, intercept):
        x = np.linspace(0, 5, 20)
        fit = linear_fit(x, slope * x + intercept)
        assert fit.slope == pytest.approx(slope, abs=1e-8)
        assert fit.intercept == pytest.approx(intercept, abs=1e-7)


class TestHistogram:
    def test_fractions_sum_to_one(self):
        w = ratio_workload([1.0, 2.0, 5.0, 50.0])
        _, fractions = overprovisioning_histogram(w)
        assert fractions.sum() == pytest.approx(1.0)

    def test_bin_width_respected(self):
        w = ratio_workload([1.0, 3.0, 7.0])
        centers, _ = overprovisioning_histogram(w, bin_width=2.0)
        assert np.allclose(np.diff(centers), 2.0)

    def test_exponential_decay_fits_line_in_log_space(self):
        rng = np.random.default_rng(1)
        ratios = 1.0 + rng.exponential(5.0, size=5000)
        w = ratio_workload(np.minimum(ratios, 31.9))
        centers, fractions = overprovisioning_histogram(w, bin_width=2.0)
        fit = log_linear_fit(centers, fractions)
        assert fit.r_squared > 0.9
        assert fit.slope < 0

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            overprovisioning_histogram(make_workload([]))

    def test_log_fit_needs_two_nonempty_bins(self):
        with pytest.raises(ValueError):
            log_linear_fit(np.array([1.0, 2.0]), np.array([1.0, 0.0]))


class TestRatioAtLeast:
    def test_basic(self):
        w = ratio_workload([1.0, 1.5, 2.0, 4.0])
        assert ratio_at_least(w, 2.0) == pytest.approx(0.5)

    def test_threshold_one_is_everything(self):
        w = ratio_workload([1.0, 3.0])
        assert ratio_at_least(w, 1.0) == 1.0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ratio_at_least(ratio_workload([2.0]), 0.0)


class TestSummary:
    def test_summary_fields(self):
        w = ratio_workload([1.0, 2.0, 2.0, 8.0])
        stats = overprovisioning_stats(w, bin_width=1.0)
        assert stats.n_jobs == 4
        assert stats.frac_ratio_ge_2 == pytest.approx(0.75)
        assert stats.max_ratio == pytest.approx(8.0)
        assert stats.median_ratio == pytest.approx(2.0)

    def test_report_mentions_paper_numbers(self):
        w = ratio_workload([1.0, 2.0, 2.0, 8.0])
        report = overprovisioning_stats(w, bin_width=1.0).format_report()
        assert "32.8%" in report
        assert "0.69" in report
