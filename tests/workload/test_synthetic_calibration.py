"""Calibration of the synthetic trace against the paper's published numbers.

These tests are the contract behind the DESIGN.md §2 substitution: the
synthetic stand-in is only legitimate while it reproduces the statistics the
paper reports for LANL CM5.  Tolerances reflect that the paper itself says
"approximately".
"""

import dataclasses

import numpy as np
import pytest

from repro.similarity.analysis import group_size_distribution
from repro.workload.lanl_cm5 import LANL_CM5, lanl_cm5_like
from repro.workload.stats import overprovisioning_stats, ratio_at_least
from repro.workload.synthetic import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def full_trace():
    # Module-scoped: generated once (~1s), analysed by every test below.
    return lanl_cm5_like(n_jobs=40_000, seed=0)


class TestHeadlineStatistics:
    def test_job_count_exact(self, full_trace):
        assert len(full_trace) == 40_000

    def test_frac_ratio_ge_2(self, full_trace):
        # Paper §1.1: ~32.8% of jobs request at least twice what they use.
        assert ratio_at_least(full_trace, 2.0) == pytest.approx(
            LANL_CM5.frac_ratio_ge_2, abs=0.05
        )

    def test_two_orders_of_magnitude_tail(self, full_trace):
        stats = overprovisioning_stats(full_trace)
        assert stats.max_ratio >= 50.0

    def test_log_histogram_is_decaying_line(self, full_trace):
        stats = overprovisioning_stats(full_trace)
        assert stats.fit.slope < 0  # decaying
        assert stats.fit.r_squared >= 0.5  # paper: 0.69

    def test_usage_never_exceeds_request(self, full_trace):
        assert all(j.used_mem <= j.req_mem + 1e-9 for j in full_trace)

    def test_full_machine_jobs_present(self, full_trace):
        full = [j for j in full_trace if j.procs == LANL_CM5.total_nodes]
        assert len(full) == LANL_CM5.n_full_machine_jobs


class TestGroupStructure:
    def test_group_count_scales_with_trace(self, full_trace):
        dist = group_size_distribution(full_trace)
        expected = LANL_CM5.n_groups * len(full_trace) / LANL_CM5.n_jobs
        assert dist.n_groups == pytest.approx(expected, rel=0.2)

    def test_frac_groups_ge_10(self, full_trace):
        dist = group_size_distribution(full_trace)
        assert dist.fraction_of_groups_at_least(10) == pytest.approx(
            LANL_CM5.frac_groups_ge_10, abs=0.05
        )

    def test_frac_jobs_in_ge_10(self, full_trace):
        dist = group_size_distribution(full_trace)
        assert dist.fraction_of_jobs_at_least(10) == pytest.approx(
            LANL_CM5.frac_jobs_in_ge_10, abs=0.07
        )

    def test_groups_are_discoverable_by_paper_key(self, full_trace):
        # The (user, app, req_mem) key must re-find the generated structure:
        # every group's requested memory is constant by construction.
        from repro.similarity.groups import build_groups

        groups = build_groups(j for j in full_trace if j.procs < 1024)
        for g in groups.values():
            assert g.similarity_range >= 1.0


class TestDeterminismAndScaling:
    def test_same_seed_same_trace(self):
        a = lanl_cm5_like(n_jobs=500, seed=3)
        b = lanl_cm5_like(n_jobs=500, seed=3)
        assert [(j.job_id, j.submit_time, j.used_mem) for j in a] == [
            (j.job_id, j.submit_time, j.used_mem) for j in b
        ]

    def test_different_seed_different_trace(self):
        a = lanl_cm5_like(n_jobs=500, seed=3)
        b = lanl_cm5_like(n_jobs=500, seed=4)
        assert [j.used_mem for j in a] != [j.used_mem for j in b]

    def test_duration_scales_with_n_jobs(self):
        cfg = SyntheticTraceConfig.lanl_cm5(n_jobs=12_000)
        assert cfg.duration == pytest.approx(
            LANL_CM5.duration * 12_000 / LANL_CM5.n_jobs
        )

    def test_offered_load_invariant_under_scaling(self):
        from repro.workload.transforms import offered_load

        small = lanl_cm5_like(n_jobs=5_000, seed=0)
        large = lanl_cm5_like(n_jobs=20_000, seed=0)
        assert offered_load(small) == pytest.approx(offered_load(large), rel=0.35)


class TestConfigValidation:
    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(
                SyntheticTraceConfig(), req_mem_weights=(1.0,)
            )

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            dataclasses.replace(
                SyntheticTraceConfig(),
                req_mem_levels=(32.0, 16.0),
                req_mem_weights=(0.5, 0.2),
            )

    def test_request_levels_capped_at_node_mem(self):
        with pytest.raises(ValueError):
            dataclasses.replace(
                SyntheticTraceConfig(),
                req_mem_levels=(64.0,),
                req_mem_weights=(1.0,),
            )

    def test_ratio_floor_below_one_rejected(self):
        with pytest.raises(ValueError, match="ratio_full_floor"):
            dataclasses.replace(SyntheticTraceConfig(), ratio_full_floor=0.9)

    def test_tiny_trace_still_generates(self):
        cfg = SyntheticTraceConfig.lanl_cm5(n_jobs=10)
        w = generate_trace(cfg, rng=0)
        assert len(w) == 10

    def test_too_small_for_full_machine_jobs_rejected(self):
        cfg = dataclasses.replace(
            SyntheticTraceConfig.lanl_cm5(n_jobs=20), n_jobs=5, n_full_machine_jobs=6
        )
        with pytest.raises(ValueError):
            generate_trace(cfg, rng=0)

    def test_submit_times_within_duration(self):
        cfg = SyntheticTraceConfig.lanl_cm5(n_jobs=2_000)
        w = generate_trace(cfg, rng=1)
        assert all(0 <= j.submit_time <= cfg.duration for j in w)

    def test_runtimes_within_bounds(self):
        cfg = SyntheticTraceConfig.lanl_cm5(n_jobs=2_000)
        w = generate_trace(cfg, rng=1)
        assert all(cfg.runtime_min <= j.run_time <= cfg.runtime_max for j in w)

    def test_proc_counts_are_cm5_partitions(self):
        cfg = SyntheticTraceConfig.lanl_cm5(n_jobs=2_000)
        w = generate_trace(cfg, rng=1)
        allowed = set(cfg.proc_levels) | {cfg.total_nodes}
        assert set(j.procs for j in w) <= allowed

    def test_group_sizes_capped(self):
        import collections

        cfg = dataclasses.replace(SyntheticTraceConfig.lanl_cm5(n_jobs=5_000), max_group_size=100)
        w = generate_trace(cfg, rng=2)
        counts = collections.Counter(
            (j.user_id, j.app_id, j.req_mem) for j in w if j.procs < cfg.total_nodes
        )
        assert max(counts.values()) <= 100
