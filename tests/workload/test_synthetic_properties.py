"""Property-based tests of the synthetic generator over random configs."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.synthetic import SyntheticTraceConfig, generate_trace

config_strategy = st.builds(
    lambda n_jobs, floor, near, p_large, window_days, diurnal: dataclasses.replace(
        SyntheticTraceConfig.lanl_cm5(n_jobs),
        ratio_full_floor=floor,
        ratio_full_scale_near=near,
        p_large_group=p_large,
        group_window_mean=window_days * 86_400.0,
        diurnal=diurnal,
    ),
    n_jobs=st.integers(min_value=30, max_value=1_500),
    floor=st.floats(min_value=1.0, max_value=3.0),
    near=st.floats(min_value=0.1, max_value=2.0),
    p_large=st.floats(min_value=0.05, max_value=0.5),
    window_days=st.floats(min_value=1.0, max_value=60.0),
    diurnal=st.booleans(),
)


class TestGeneratorProperties:
    @settings(max_examples=25, deadline=None)
    @given(cfg=config_strategy, seed=st.integers(min_value=0, max_value=50))
    def test_every_config_yields_valid_trace(self, cfg, seed):
        w = generate_trace(cfg, rng=seed)
        assert len(w) == cfg.n_jobs
        for job in w:
            assert 0 <= job.submit_time <= cfg.duration
            assert cfg.runtime_min <= job.run_time <= cfg.runtime_max
            assert 0 < job.used_mem <= job.req_mem + 1e-9
            assert job.req_mem <= cfg.node_mem
            assert job.procs in set(cfg.proc_levels) | {cfg.total_nodes}

    @settings(max_examples=15, deadline=None)
    @given(cfg=config_strategy, seed=st.integers(min_value=0, max_value=50))
    def test_jobs_sorted_by_submit_time(self, cfg, seed):
        w = generate_trace(cfg, rng=seed)
        times = [j.submit_time for j in w]
        assert times == sorted(times)

    @settings(max_examples=15, deadline=None)
    @given(cfg=config_strategy, seed=st.integers(min_value=0, max_value=50))
    def test_groups_have_constant_request(self, cfg, seed):
        # The (user, app, req_mem) key must be consistent: within a key the
        # request is constant by construction (it IS part of the key), and
        # every full-machine job is excluded from group structure.
        w = generate_trace(cfg, rng=seed)
        full = [j for j in w if j.procs == cfg.total_nodes]
        assert len(full) == cfg.n_full_machine_jobs

    @settings(max_examples=15, deadline=None)
    @given(cfg=config_strategy)
    def test_same_seed_reproducible(self, cfg):
        a = generate_trace(cfg, rng=9)
        b = generate_trace(cfg, rng=9)
        assert [(j.submit_time, j.used_mem, j.procs) for j in a] == [
            (j.submit_time, j.used_mem, j.procs) for j in b
        ]

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_unique_job_ids(self, seed):
        w = generate_trace(SyntheticTraceConfig.lanl_cm5(500), rng=seed)
        ids = [j.job_id for j in w]
        assert len(set(ids)) == len(ids)
