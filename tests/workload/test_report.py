"""Trace characterization report."""

import gzip

import pytest

from repro.workload.report import characterize
from repro.workload.swf import read_swf, write_swf_text
from tests.conftest import make_job, make_workload


class TestCharacterize:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            characterize(make_workload([]))

    def test_basic_counts(self, small_trace):
        report = characterize(small_trace)
        assert report.n_jobs == len(small_trace)
        assert report.total_nodes == 1024
        assert report.n_users > 10

    def test_memory_mix_shares_sum_below_one(self, small_trace):
        report = characterize(small_trace)
        total = sum(share for _, share in report.req_mem_levels)
        assert 0.9 <= total <= 1.0 + 1e-9
        # 32MB is the dominant request level in the calibrated trace.
        assert report.req_mem_levels[0][0] == 32.0

    def test_percentiles_ordered(self, small_trace):
        report = characterize(small_trace)
        assert report.procs_p50 <= report.procs_p90 <= report.procs_p99
        assert report.runtime_p50 <= report.runtime_p90 <= report.runtime_p99

    def test_diurnal_peak_visible(self, small_trace):
        report = characterize(small_trace)
        # With day/night cycles the busiest hour clearly exceeds uniform 1/24.
        assert report.peak_hour_share > 1.3 / 24

    def test_overprovisioning_panel(self, small_trace):
        report = characterize(small_trace)
        assert 0.2 < report.frac_ratio_ge_2 < 0.45
        assert report.max_ratio > 10

    def test_format_report(self, small_trace):
        text = characterize(small_trace).format_report()
        assert "offered load" in text
        assert "ratio >= 2" in text

    def test_single_job_trace(self):
        report = characterize(make_workload([make_job()]))
        assert report.n_jobs == 1
        assert report.mean_interarrival == 0.0


class TestGzipSwf:
    def test_reads_gz_files(self, tmp_path, small_trace):
        text = write_swf_text(small_trace)
        path = tmp_path / "trace.swf.gz"
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(text)
        workload, report = read_swf(path)
        assert report.parsed_jobs == len(small_trace)
        assert workload.total_nodes == small_trace.total_nodes
