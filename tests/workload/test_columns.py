"""The columnar data plane: JobColumns round trips, lazy workloads, and the
vectorized SWF fast path against the per-line reference parser."""

import numpy as np
import pytest

from repro.workload import (
    COLUMN_FIELDS,
    Job,
    JobColumns,
    LazyJobs,
    Workload,
    lanl_cm5_like,
    read_swf_text,
    scale_load,
)


def jobs_fixture():
    return [
        Job(job_id=3, submit_time=5.0, run_time=60.0, procs=4,
            req_mem=24.0, used_mem=6.0, req_time=120.0,
            user_id=1, group_id=1, app_id=7, status=1),
        Job(job_id=1, submit_time=0.5, run_time=30.0, procs=1,
            req_mem=32.0, used_mem=32.0, req_time=-1.0,
            user_id=2, group_id=2, app_id=8, status=1),
        Job(job_id=2, submit_time=5.0, run_time=7.25, procs=16,
            req_mem=8.0, used_mem=1.0, req_time=10.0,
            user_id=3, group_id=3, app_id=9, status=0),
    ]


class TestJobColumnsRoundTrip:
    def test_from_jobs_to_jobs_is_bit_identical(self):
        jobs = jobs_fixture()
        assert JobColumns.from_jobs(jobs).to_jobs() == jobs

    def test_dtypes_match_the_declared_schema(self):
        cols = JobColumns.from_jobs(jobs_fixture())
        for name, dtype in COLUMN_FIELDS:
            assert getattr(cols, name).dtype == np.dtype(dtype)

    def test_buffer_round_trip_and_read_only_views(self):
        cols = JobColumns.from_jobs(jobs_fixture())
        buf = memoryview(bytearray(cols.nbytes))
        cols.pack_into(buf)
        back = JobColumns.from_buffer(buf, len(cols))
        assert back.equals(cols)
        with pytest.raises((ValueError, RuntimeError)):
            back.submit_time[0] = 99.0  # shared views must be immutable

    def test_validate_names_the_offending_row(self):
        cols = JobColumns.from_jobs(jobs_fixture())
        bad = cols.with_submit_time(
            np.array([0.0, -1.0, 0.0], dtype=np.float64)
        )
        with pytest.raises(ValueError, match="submit_time"):
            bad.validate()

    def test_sort_and_select(self):
        cols = JobColumns.from_jobs(jobs_fixture())
        assert not cols.is_sorted()
        by_submit = cols.sort_by_submit()
        assert by_submit.is_sorted()
        assert by_submit.job_id.tolist() == [1, 2, 3]  # job_id breaks the tie
        assert by_submit.sort_by_submit() is by_submit  # sorted: no-op copy
        small = by_submit.select(by_submit.procs < 8)
        assert small.job_id.tolist() == [1, 3]
        assert by_submit.head(2).job_id.tolist() == [1, 2]


class TestNonFiniteRejection:
    """``validate()`` must reject NaN/inf the same way ``swf.py`` does —
    non-finite values are never legitimate trace data, and NaN would slip
    through every ``<=``/``>=`` validity guard (all comparisons False)."""

    CHECKED = ("submit_time", "run_time", "req_mem", "used_mem", "req_time")

    @pytest.mark.parametrize("column", CHECKED)
    @pytest.mark.parametrize("value", [float("nan"), float("inf"), float("-inf")])
    def test_validate_rejects_non_finite_naming_the_row(self, column, value):
        cols = JobColumns.from_jobs(jobs_fixture())
        arr = getattr(cols, column).copy()
        arr[1] = value
        fields = {name: getattr(cols, name) for name, _ in COLUMN_FIELDS}
        fields[column] = arr
        bad = JobColumns(**fields)
        with pytest.raises(ValueError, match=rf"{column}.*finite.*row 1"):
            bad.validate()

    def test_swf_parser_drops_the_same_rows(self):
        # Row 2 carries a NaN runtime: both SWF lanes (vectorized and
        # per-line) drop it as malformed rather than letting it reach a
        # Job / JobColumns, which is why validate() can treat non-finite
        # as a construction bug.
        text = SWF_TEXT.replace(
            "2 5 -1 50 2", "2 5 -1 nan 2"
        )
        fast, fast_report = read_swf_text(text)
        assert 2 not in [job.job_id for job in fast]
        assert fast_report.skipped_malformed >= 1


class TestSelectHeadSemantics:
    """``select``/``head`` contract: fresh ``JobColumns`` whose arrays
    follow numpy indexing rules — fancy/boolean indexing copies, basic
    slicing views — so callers know when mutation can leak."""

    def test_select_returns_independent_copies(self):
        cols = JobColumns.from_jobs(jobs_fixture())
        picked = cols.select(np.array([0, 2]))
        masked = cols.select(cols.procs < 8)
        for sub in (picked, masked):
            assert not np.shares_memory(sub.submit_time, cols.submit_time)
        picked.submit_time[0] = 999.0
        assert cols.submit_time[0] != 999.0  # the parent never sees it

    def test_head_returns_views_over_the_parent(self):
        cols = JobColumns.from_jobs(jobs_fixture())
        top = cols.head(2)
        assert len(top) == 2
        assert np.shares_memory(top.submit_time, cols.submit_time)

    def test_head_of_buffer_backed_columns_stays_read_only(self):
        cols = JobColumns.from_jobs(jobs_fixture())
        buf = memoryview(bytearray(cols.nbytes))
        cols.pack_into(buf)
        shared = JobColumns.from_buffer(buf, len(cols))
        top = shared.head(2)
        with pytest.raises((ValueError, RuntimeError)):
            top.submit_time[0] = 99.0  # views inherit immutability


class TestLazyWorkloadEquivalence:
    def test_from_columns_matches_the_object_path(self):
        jobs = jobs_fixture()
        eager = Workload(list(jobs), total_nodes=1024, node_mem=32.0)
        lazy = Workload.from_columns(
            JobColumns.from_jobs(jobs), total_nodes=1024, node_mem=32.0
        )
        assert isinstance(lazy.jobs, LazyJobs)
        assert not lazy.jobs.materialized()  # construction stays lazy
        assert list(lazy) == list(eager)
        assert lazy.span == eager.span
        assert lazy.total_work == eager.total_work

    def test_release_rematerializes_identically(self):
        lazy = Workload.from_columns(JobColumns.from_jobs(jobs_fixture()))
        first = list(lazy)
        lazy.release_materialized()
        assert not lazy.jobs.materialized()
        assert list(lazy) == first

    def test_release_is_a_noop_for_list_backed_workloads(self):
        eager = Workload(jobs_fixture())
        eager.release_materialized()
        assert len(eager) == 3

    def test_scale_load_on_lazy_workload_stays_lazy(self):
        base = lanl_cm5_like(n_jobs=200, seed=3)
        scaled = scale_load(base, 1.2)
        assert isinstance(scaled.jobs, LazyJobs)
        assert not scaled.jobs.materialized()
        assert len(scaled) == len(base)


SWF_TEXT = """\
; MaxNodes: 64
; MaxMemory: 32768
1 0 -1 100 4 -1 1024 4 200 2048 1 10 10 5 -1 -1 -1 -1
2 5 -1 50 2 -1 512 2 100 1024 1 11 11 6 -1 -1 -1 -1
3 9 -1 -1 2 -1 512 2 100 1024 0 11 11 6 -1 -1 -1 -1
4 12 -1 80 0 -1 -1 8 160 4096 1 12 12 7 -1 -1 -1 -1
"""


class TestSwfFastPathParity:
    def _force_fallback(self, monkeypatch):
        import repro.workload.swf as swf_mod

        monkeypatch.setattr(
            swf_mod.np, "loadtxt",
            lambda *a, **k: (_ for _ in ()).throw(ValueError("forced")),
        )

    @pytest.mark.parametrize("require_memory", [True, False])
    def test_fast_path_matches_reference_parser(self, monkeypatch, require_memory):
        fast, fast_report = read_swf_text(SWF_TEXT, require_memory=require_memory)
        self._force_fallback(monkeypatch)
        slow, slow_report = read_swf_text(SWF_TEXT, require_memory=require_memory)
        assert list(fast) == list(slow)
        assert fast.total_nodes == slow.total_nodes == 64
        assert fast.node_mem == slow.node_mem
        assert fast_report.summary() == slow_report.summary()

    def test_ragged_trace_falls_back_transparently(self):
        ragged = SWF_TEXT + "5 1 -1 10 1 -1\n"  # short row: loadtxt refuses
        workload, report = read_swf_text(ragged)
        assert report.skipped_malformed >= 1
        assert len(workload) == 2  # jobs 1 and 2; 3 lacks runtime, 4 memory

    def test_large_synthetic_round_trip_is_bit_identical(self):
        from repro.workload import write_swf_text

        base = lanl_cm5_like(n_jobs=300, seed=11)
        text = write_swf_text(base)
        fast, _ = read_swf_text(text)
        assert list(fast) == list(base)
