"""Flurry detection and removal (archive-style trace cleaning)."""

import pytest

from repro.util.units import SECONDS_PER_HOUR
from repro.workload.cleaning import detect_flurries, inject_flurry, remove_flurries
from tests.conftest import make_job, make_workload


def quiet_workload(n=30, gap=3600.0):
    """One job per hour: far below any flurry threshold."""
    return make_workload(
        [
            make_job(job_id=i + 1, submit_time=i * gap, user_id=i % 3)
            for i in range(n)
        ]
    )


class TestDetect:
    def test_quiet_trace_clean(self):
        assert detect_flurries(quiet_workload(), threshold=10) == []

    def test_detects_injected_flurry(self):
        w = inject_flurry(quiet_workload(), user_id=7, start_time=5000.0, n_jobs=80)
        flurries = detect_flurries(w, threshold=50, window=SECONDS_PER_HOUR)
        assert len(flurries) == 1
        f = flurries[0]
        assert f.user_id == 7
        assert f.n_jobs >= 50
        assert f.start_time >= 5000.0

    def test_threshold_respected(self):
        w = inject_flurry(quiet_workload(), user_id=7, start_time=5000.0, n_jobs=40)
        assert detect_flurries(w, threshold=50) == []
        assert detect_flurries(w, threshold=30)

    def test_two_users_two_flurries(self):
        w = inject_flurry(quiet_workload(), user_id=7, start_time=5000.0, n_jobs=60)
        w = inject_flurry(w, user_id=8, start_time=90_000.0, n_jobs=60)
        flurries = detect_flurries(w, threshold=50)
        assert {f.user_id for f in flurries} == {7, 8}

    def test_separated_bursts_of_one_user(self):
        w = quiet_workload()
        w = inject_flurry(w, user_id=7, start_time=5_000.0, n_jobs=60)
        w = inject_flurry(w, user_id=7, start_time=500_000.0, n_jobs=60)
        flurries = detect_flurries(w, threshold=50)
        assert len(flurries) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_flurries(quiet_workload(), threshold=1)
        with pytest.raises(ValueError):
            detect_flurries(quiet_workload(), window=0.0)


class TestRemove:
    def test_removes_only_flurry_jobs(self):
        base = quiet_workload()
        w = inject_flurry(base, user_id=7, start_time=5000.0, n_jobs=80)
        cleaned, flurries = remove_flurries(w, threshold=50)
        assert len(flurries) == 1
        # All original jobs survive; the flurry is (mostly) gone.
        surviving_ids = {j.job_id for j in cleaned}
        assert {j.job_id for j in base} <= surviving_ids
        assert len(cleaned) < len(w)
        assert len(w) - len(cleaned) >= 50

    def test_clean_trace_untouched(self):
        w = quiet_workload()
        cleaned, flurries = remove_flurries(w, threshold=50)
        assert flurries == []
        assert cleaned is w

    def test_other_users_jobs_in_window_survive(self):
        base = quiet_workload()
        w = inject_flurry(base, user_id=7, start_time=5000.0, n_jobs=80)
        cleaned, _ = remove_flurries(w, threshold=50)
        # User 0/1/2 jobs inside the flurry window are kept.
        others_before = [j for j in w if j.user_id != 7]
        others_after = [j for j in cleaned if j.user_id != 7]
        assert len(others_before) == len(others_after)


class TestInject:
    def test_ids_continue(self):
        w = quiet_workload(n=5)
        out = inject_flurry(w, user_id=9, start_time=0.0, n_jobs=3)
        assert len(out) == 8
        assert max(j.job_id for j in out) == 8

    def test_template_respected(self):
        template = make_job(job_id=0, procs=16, req_mem=16.0, used_mem=2.0)
        out = inject_flurry(
            quiet_workload(n=2), user_id=9, start_time=0.0, n_jobs=2, template=template
        )
        injected = [j for j in out if j.user_id == 9]
        assert all(j.procs == 16 for j in injected)

    def test_validation(self):
        with pytest.raises(ValueError):
            inject_flurry(quiet_workload(), user_id=1, start_time=0.0, n_jobs=0)
