"""JSONL trace writing/reading, and per-group analyses from the trace alone."""

import io
import json

import pytest

from repro.cluster import paper_cluster
from repro.core import SuccessiveApproximation
from repro.experiments.fig7 import make_fig7_cluster
from repro.obs import (
    TRACE_SCHEMA_VERSION,
    JsonlTraceObserver,
    group_trajectories,
    read_trace,
    trace_counts,
)
from repro.sim import FaultConfig, simulate
from tests.conftest import make_job, make_workload


def traced_run(workload, cluster, **kwargs):
    buffer = io.StringIO()
    observer = JsonlTraceObserver(buffer)
    result = simulate(workload, cluster, observer=observer, **kwargs)
    buffer.seek(0)
    return result, list(read_trace(buffer))


class TestWriter:
    def test_every_line_is_versioned_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlTraceObserver(path) as observer:
            simulate(
                make_workload([make_job(procs=1)], total_nodes=1),
                paper_cluster(24.0),
                observer=observer,
            )
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            doc = json.loads(line)
            assert doc["v"] == TRACE_SCHEMA_VERSION
            assert "t" in doc and "event" in doc

    def test_run_frame_and_counts(self, sim_trace):
        result, events = traced_run(
            sim_trace, paper_cluster(24.0), estimator=SuccessiveApproximation(), seed=0
        )
        assert events[0]["event"] == "run_start"
        assert events[0]["estimator"] == "successive-approximation"
        assert events[-1]["event"] == "run_end"
        assert events[-1]["n_completed"] == result.n_completed
        counts = trace_counts(events)
        assert counts["job_started"] == result.n_attempts
        assert counts["job_completed"] == result.n_completed
        assert counts.get("job_failed", 0) == (
            result.n_resource_failures + result.n_spurious_failures
        )

    def test_fault_events_in_trace(self, sim_trace):
        result, events = traced_run(
            sim_trace,
            paper_cluster(24.0),
            estimator=SuccessiveApproximation(),
            seed=0,
            fault_config=FaultConfig(node_mtbf=5e6, node_mttr=2000.0),
        )
        counts = trace_counts(events)
        assert counts["node_failed"] == result.n_node_failures
        assert counts.get("job_killed", 0) == result.n_fault_kills

    def test_scheduling_lines_off_by_default(self):
        workload = make_workload([make_job(procs=1)], total_nodes=1)
        buffer = io.StringIO()
        simulate(
            workload, paper_cluster(24.0), observer=JsonlTraceObserver(buffer)
        )
        assert "sched_pass" not in trace_counts(read_trace(io.StringIO(buffer.getvalue())))
        verbose = io.StringIO()
        simulate(
            workload,
            paper_cluster(24.0),
            observer=JsonlTraceObserver(verbose, include_scheduling=True),
        )
        assert trace_counts(read_trace(io.StringIO(verbose.getvalue())))["sched_pass"] > 0


class TestReader:
    def test_skips_torn_and_foreign_lines(self):
        good = json.dumps({"v": TRACE_SCHEMA_VERSION, "t": 1.0, "event": "job_started"})
        text = "\n".join(
            [
                good,
                '{"v": 99, "t": 0, "event": "future_schema"}',
                "not json at all",
                good[: len(good) // 2],  # torn trailing write
            ]
        )
        events = list(read_trace(io.StringIO(text)))
        assert len(events) == 1
        assert events[0]["event"] == "job_started"


class TestFigure7FromTrace:
    def test_paper_trajectory_reproducible_from_trace_alone(self):
        # Four serial jobs of one similarity group (requests 32MB, uses
        # 5.2MB) on a {4,8,16,24,32} ladder: submissions descend 32, 16, 8,
        # then probe 4, fail, and retry at the restored 8 — the paper's
        # Figure 7 trajectory 32 -> 16 -> 8 -> 4 -> 8, read back purely
        # from the emitted job_started lines (no live estimator access).
        jobs = [
            make_job(job_id=i + 1, submit_time=1000.0 * i, run_time=100.0,
                     procs=1, req_mem=32.0, used_mem=5.2, user_id=7, app_id=3)
            for i in range(4)
        ]
        result, events = traced_run(
            make_workload(jobs, total_nodes=320),
            make_fig7_cluster(),
            estimator=SuccessiveApproximation(alpha=2.0, beta=0.0),
            seed=0,
        )
        trajectories = group_trajectories(events)
        assert list(trajectories) == [(7, 3, 32.0)]
        assert trajectories[(7, 3, 32.0)] == [32.0, 16.0, 8.0, 4.0, 8.0]
        assert result.n_resource_failures == 1
