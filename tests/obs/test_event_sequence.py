"""The observer hook contract: exact event sequences from scripted runs.

The scenario covers every job-lifecycle hook: a job that completes first
try, a job that fails a resource probe and succeeds on resubmission, and a
job killed mid-run by a scripted node fault (then waiting out the repair).
"""

import math

import pytest

from repro.cluster.cluster import Cluster
from repro.core import SuccessiveApproximation
from repro.obs import RecordingObserver
from repro.sim import FaultStats, Simulation
from repro.sim.failure import FailureModel
from tests.conftest import make_job, make_workload


class ScriptedInjector:
    """A fault injector that fires exactly once, at a scripted time.

    Implements the duck interface the engine consumes (``enabled``,
    ``stats``, ``rng``, and the four draw methods) with deterministic
    values, so event-sequence tests need no RNG archaeology.
    """

    class _Rng:
        def random(self):  # only consulted for busy-vs-free victim draws
            return 0.0

        def choice(self, n, p=None):
            return 0

    def __init__(self, fire_after: float, repair: float, level: float) -> None:
        self.enabled = True
        self.stats = FaultStats()
        self.rng = self._Rng()
        self._delays = [fire_after]
        self.repair = repair
        self.level = level

    def next_failure_delay(self, n_nodes: int) -> float:
        return self._delays.pop() if self._delays else math.inf

    def repair_delay(self) -> float:
        return self.repair

    def n_victims(self) -> int:
        return 1

    def choose_level(self, in_service):
        return self.level


@pytest.fixture()
def scripted_run():
    # One 32MB node + one 16MB node.  Job A (group u1/a1/32) succeeds and
    # drops the group estimate to 16; job B of the same group probes 16,
    # fails (uses 20), and succeeds on resubmission at the restored 32; job
    # C (group u2) is killed at t=500 by the scripted fault on the 32MB
    # node, waits out the 100s repair, and completes on the repaired node.
    jobs = [
        make_job(job_id=1, submit_time=0.0, run_time=100.0, procs=1,
                 req_mem=32.0, used_mem=20.0, user_id=1, app_id=1),
        make_job(job_id=2, submit_time=200.0, run_time=100.0, procs=1,
                 req_mem=32.0, used_mem=20.0, user_id=1, app_id=1),
        make_job(job_id=3, submit_time=400.0, run_time=1000.0, procs=1,
                 req_mem=32.0, used_mem=8.0, user_id=2, app_id=1),
    ]
    observer = RecordingObserver()
    result = Simulation(
        make_workload(jobs, total_nodes=2),
        Cluster([(1, 32.0), (1, 16.0)]),
        estimator=SuccessiveApproximation(),
        failure_model=FailureModel(rng=0),
        fault_injector=ScriptedInjector(fire_after=500.0, repair=100.0, level=32.0),
        observer=observer,
    ).run()
    return result, observer


class TestExactEventSequence:
    def test_full_transcript(self, scripted_run):
        result, observer = scripted_run
        assert observer.events == [
            ("run_start", 3, 2),
            # Job A: clean first-try completion at the user's request.
            ("enqueued", 1, 0, 32.0, False),
            ("started", 1, 0, 32.0, 32.0),
            ("completed", 1, 0),
            # Job B: probes the reduced 16MB estimate, fails (uses 20MB),
            # resubmits *at the head* with the restored safe value.
            ("enqueued", 2, 0, 16.0, False),
            ("started", 2, 0, 16.0, 16.0),
            ("failed", 2, 0, True),
            ("enqueued", 2, 1, 32.0, True),
            ("started", 2, 1, 32.0, 32.0),
            ("completed", 2, 1),
            # Job C: killed by the scripted node fault (kill hooks fire
            # before the node-down hook: the engine evicts the victim, then
            # takes the node out of service), waits out the repair.
            ("enqueued", 3, 0, 32.0, False),
            ("started", 3, 0, 32.0, 32.0),
            ("killed", 3, 0),
            ("enqueued", 3, 1, 32.0, True),
            ("node_failed", 32.0),
            ("node_repaired", 32.0),
            ("started", 3, 1, 32.0, 32.0),
            ("completed", 3, 1),
            ("run_end", 3),
        ]

    def test_result_agrees_with_transcript(self, scripted_run):
        result, observer = scripted_run
        assert result.n_completed == 3
        assert result.n_resource_failures == 1
        assert result.n_fault_kills == 1
        assert result.n_node_failures == 1
        # The node was down exactly for its repair interval [500, 600],
        # fully inside the observed trace — no clamping needed here.
        assert result.node_downtime_seconds == pytest.approx(100.0)
        # The killed job restarts only after the repair: t=600, +1000s run.
        killed_job = result.summaries[-1]
        assert killed_job.start_time == pytest.approx(600.0)
        assert killed_job.end_time == pytest.approx(1600.0)

    def test_scheduling_passes_optional(self):
        w = make_workload([make_job(procs=1)], total_nodes=1)
        recording = RecordingObserver(record_scheduling=True)
        Simulation(w, Cluster([(1, 32.0)]), observer=recording).run()
        scheds = [e for e in recording.events if e[0] == "sched"]
        assert scheds, "scheduling passes were not recorded"
        # First pass starts the only job; final pass sees an empty system.
        assert scheds[0] == ("sched", 1, 0, 1, 0)
        assert scheds[-1] == ("sched", 0, 0, 0, 0)


class TestDowntimeClamp:
    def test_repair_past_end_of_trace_is_clamped(self):
        # The fault fires at t=50 (killing the only job, which restarts on
        # the second node) and schedules a repair far past the end of the
        # workload.  Only the in-trace slice of the interval may count.
        job = make_job(job_id=1, submit_time=0.0, run_time=100.0, procs=1,
                       req_mem=32.0, used_mem=8.0)
        injector = ScriptedInjector(fire_after=50.0, repair=1e9, level=32.0)
        result = Simulation(
            make_workload([job], total_nodes=2),
            Cluster([(2, 32.0)]),
            failure_model=FailureModel(rng=0),
            fault_injector=injector,
        ).run()
        assert result.n_fault_kills == 1
        # Trace spans [0, 150]: the restarted job runs 50 -> 150.  The node
        # went down at 50, so at most 100s of downtime is observable.
        assert result.t_last_end == pytest.approx(150.0)
        assert result.node_downtime_seconds == pytest.approx(100.0)
        # The injector's own stats agree with the clamped figure.
        assert injector.stats.node_downtime_seconds == pytest.approx(100.0)
