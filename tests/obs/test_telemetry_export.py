"""Estimator telemetry sampling, the timeline sampler, and the Prometheus export."""

import pytest

from repro.cluster import paper_cluster
from repro.cluster.cluster import Cluster
from repro.core import NoEstimation, SuccessiveApproximation
from repro.obs import (
    CompositeObserver,
    CounterObserver,
    EstimatorTelemetryObserver,
    TimelineSampler,
    prometheus_text,
)
from repro.sim import Simulation, TimelineSample, simulate
from tests.conftest import make_job, make_workload


class TestEstimatorTelemetryProtocol:
    def test_base_default_is_name_only(self):
        assert NoEstimation().telemetry() == {"name": "no-estimation"}

    def test_successive_reports_groups(self):
        estimator = SuccessiveApproximation()
        workload = make_workload(
            [
                make_job(job_id=1, submit_time=0.0, run_time=10.0, procs=1,
                         used_mem=5.0, user_id=1),
                make_job(job_id=2, submit_time=100.0, run_time=10.0, procs=1,
                         used_mem=5.0, user_id=2),
            ]
        )
        simulate(workload, paper_cluster(24.0), estimator=estimator, seed=0)
        snapshot = estimator.telemetry()
        assert snapshot["name"] == "successive-approximation"
        assert snapshot["n_groups"] == 2
        for state in snapshot["groups"].values():
            assert {"estimate", "alpha", "safe_value", "successes", "failures"} \
                <= set(state)


class TestTelemetryObserver:
    def test_trajectory_and_backoff(self):
        # One group descending 32 -> 16 -> 12(=24/2 internal) with a failure
        # in the middle restores the estimate upward: a backoff event.
        jobs = [
            make_job(job_id=i + 1, submit_time=200.0 * i, run_time=100.0,
                     procs=1, req_mem=32.0, used_mem=20.0)
            for i in range(3)
        ]
        telemetry = EstimatorTelemetryObserver()
        simulate(
            make_workload(jobs),
            Cluster([(4, 32.0), (4, 16.0)]),
            estimator=SuccessiveApproximation(),
            seed=0,
            observer=telemetry,
        )
        assert len(telemetry.groups) == 1
        (group,) = telemetry.groups
        estimates = [e for _, e, _ in telemetry.trajectory(group)]
        # Success at 32 halves to 16; the 16 probe fails (uses 20) and the
        # internal estimate is restored to the safe 32.
        assert estimates[0] == 16.0
        assert 32.0 in estimates[1:]
        assert telemetry.backoffs, "the failure-restore never surfaced"
        assert telemetry.backoffs[0].restored > telemetry.backoffs[0].previous
        assert group in telemetry.format_report()

    def test_safe_on_groupless_estimator(self):
        telemetry = EstimatorTelemetryObserver()
        simulate(
            make_workload([make_job(procs=1)]),
            paper_cluster(24.0),
            estimator=NoEstimation(),
            observer=telemetry,
        )
        assert telemetry.groups == {}
        assert "no per-group telemetry" in telemetry.format_report()


class TestTimelineSampler:
    def test_matches_record_timeline(self):
        jobs = [make_job(job_id=i + 1, submit_time=float(i), procs=8) for i in range(6)]
        sampler = TimelineSampler()
        result = Simulation(
            make_workload(jobs),
            Cluster([(16, 32.0)]),
            record_timeline=True,
            observer=sampler,
        ).run()
        assert sampler.samples == result.timeline
        assert all(isinstance(s, TimelineSample) for s in sampler.samples)

    def test_stride_subsamples(self):
        jobs = [make_job(job_id=i + 1, submit_time=float(i), procs=8) for i in range(6)]
        dense = TimelineSampler()
        sparse = TimelineSampler(stride=3)
        Simulation(
            make_workload(jobs),
            Cluster([(16, 32.0)]),
            observer=CompositeObserver([dense, sparse]),
        ).run()
        assert sparse.samples == dense.samples[::3]

    def test_stride_validation(self):
        with pytest.raises(ValueError, match="stride"):
            TimelineSampler(stride=0)


class TestPrometheusExport:
    def test_format_and_values(self, sim_trace):
        counters = CounterObserver()
        result = simulate(
            sim_trace,
            paper_cluster(24.0),
            estimator=SuccessiveApproximation(),
            seed=0,
            observer=counters,
        )
        text = prometheus_text(result, counters=counters.snapshot())
        assert text.endswith("\n")
        lines = text.splitlines()
        helps = [l for l in lines if l.startswith("# HELP")]
        types = [l for l in lines if l.startswith("# TYPE")]
        assert len(helps) == len(types)
        samples = [l for l in lines if not l.startswith("#")]
        for line in samples:
            name_and_labels, value = line.rsplit(" ", 1)
            assert name_and_labels.startswith("repro_")
            assert 'workload="' in name_and_labels
            float(value)  # every sample value parses
        assert any(
            l.startswith("repro_attempts_total{") and l.endswith(f" {result.n_attempts}")
            for l in samples
        )
        assert any('name="attempts_started"' in l for l in samples)

    def test_label_escaping(self, sim_trace):
        result = simulate(sim_trace, paper_cluster(24.0), seed=0)
        text = prometheus_text(result, extra_labels={"tag": 'say "hi"\nthere'})
        assert 'tag="say \\"hi\\" there"' in text
