"""Observer-off runs must be bit-identical to the pre-observer engine.

The acceptance criterion of the observability layer: with no observer (or
the :class:`NullObserver`) attached, ``simulate()`` output is bit-for-bit
identical — same attempts, same node-seconds, same summaries — and the
engine performs nothing but one ``is None`` branch per hook site.
"""

import pytest

from repro.cluster import paper_cluster
from repro.core import SuccessiveApproximation
from repro.obs import CompositeObserver, CounterObserver, NullObserver, RecordingObserver
from repro.sim import FaultConfig, simulate


def full_fingerprint(result):
    """Every numeric output of a run, down to attempt-level floats."""
    return (
        result.n_attempts,
        result.n_resource_failures,
        result.n_spurious_failures,
        result.n_fault_kills,
        result.n_node_failures,
        result.node_downtime_seconds,
        result.n_reduced_submissions,
        result.useful_node_seconds,
        result.wasted_node_seconds,
        result.t_first_submit,
        result.t_last_end,
        [
            (a.job_id, a.attempt, a.start_time, a.end_time, a.requirement,
             a.granted, a.succeeded, a.resource_failure)
            for a in result.attempts
        ],
        [
            (s.job.job_id, s.start_time, s.end_time, s.n_attempts,
             s.final_requirement, s.wasted_node_seconds)
            for s in result.summaries
        ],
    )


def run(trace, observer=None, faults=False):
    return simulate(
        trace,
        paper_cluster(24.0),
        estimator=SuccessiveApproximation(),
        seed=0,
        fault_config=FaultConfig(node_mtbf=5e6, node_mttr=2000.0) if faults else None,
        observer=observer,
    )


class TestBitIdentical:
    @pytest.mark.parametrize("faults", [False, True], ids=["clean", "faulty"])
    def test_null_observer_is_invisible(self, sim_trace, faults):
        base = full_fingerprint(run(sim_trace, observer=None, faults=faults))
        nulled = full_fingerprint(run(sim_trace, observer=NullObserver(), faults=faults))
        assert base == nulled

    def test_real_observers_are_invisible_too(self, sim_trace):
        # Hooks are notifications, not interventions: even a full observer
        # stack must not perturb the result.
        base = full_fingerprint(run(sim_trace, faults=True))
        stacked = full_fingerprint(
            run(
                sim_trace,
                observer=CompositeObserver(
                    [CounterObserver(), RecordingObserver()]
                ),
                faults=True,
            )
        )
        assert base == stacked

    def test_counters_match_engine_counters(self, sim_trace):
        counters = CounterObserver()
        result = run(sim_trace, observer=counters, faults=True)
        snap = counters.snapshot()
        assert snap["attempts_started"] == result.n_attempts
        assert snap["attempts_failed_resource"] == result.n_resource_failures
        assert snap["attempts_failed_spurious"] == result.n_spurious_failures
        assert snap["attempts_killed_by_fault"] == result.n_fault_kills
        assert snap["node_failures"] == result.n_node_failures
        assert snap["attempts_completed"] == result.n_completed
        assert snap["useful_node_seconds"] == pytest.approx(result.useful_node_seconds)
        assert snap["lost_node_seconds"] == pytest.approx(result.wasted_node_seconds)
        # Every failure path feeds a head-of-queue resubmission.
        assert snap["resubmissions"] == (
            result.n_resource_failures
            + result.n_spurious_failures
            + result.n_fault_kills
        )
