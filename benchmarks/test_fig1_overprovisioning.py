"""FIG1 bench: regenerate Figure 1 (over-provisioning histogram + fit).

Paper claims checked: ~32.8% of jobs at ratio >= 2; mismatch reaching two
orders of magnitude; straight-line fit of the log histogram (paper R^2 0.69).
"""

from conftest import run_once

from repro.experiments import fig1


def test_fig1_overprovisioning(benchmark, bench_config, save_artifact):
    result = run_once(benchmark, lambda: fig1.run(bench_config))
    save_artifact("fig1", result.format_table() + "\n\n" + result.format_chart())

    assert result.stats.frac_ratio_ge_2 == abs(result.stats.frac_ratio_ge_2)
    assert 0.25 <= result.stats.frac_ratio_ge_2 <= 0.42  # paper: 0.328
    assert result.stats.max_ratio >= 50.0  # two orders of magnitude
    assert result.stats.fit.slope < 0
    assert result.stats.fit.r_squared >= 0.5  # paper: 0.69
