"""EXT bench: observer overhead — the null path must be free.

Times the same simulation three ways: no observer at all (the pre-observer
baseline path), a :class:`NullObserver` (every hook site dispatches into a
no-op), and a :class:`JsonlTraceObserver` writing the full event stream.
The acceptance bar from the observability tentpole: the null observer may
cost at most ``REPRO_OBS_TOLERANCE`` (default 5%) over the bare run —
anything more means the hook sites grew beyond one ``is None`` branch.

Timing protocol: best-of-N wall clock per variant (default 5 repeats,
``REPRO_OBS_REPEATS``), interleaved so ambient load hits all variants
alike.  Best-of is the right statistic for an overhead *bound*: it strips
scheduler noise, which only ever inflates a measurement.

Run via ``make obs-bench`` (plain pytest: these tests assert a ratio, so
they run with or without ``--benchmark-only``'s machinery).
"""

import io
import os
import time

from repro.cluster import paper_cluster
from repro.core import SuccessiveApproximation
from repro.obs import JsonlTraceObserver, NullObserver
from repro.sim import simulate
from repro.workload import drop_full_machine_jobs
from repro.workload.synthetic import SyntheticTraceConfig, generate_trace

N_JOBS = int(os.environ.get("REPRO_OBS_JOBS", "8000"))
REPEATS = int(os.environ.get("REPRO_OBS_REPEATS", "5"))
TOLERANCE = float(os.environ.get("REPRO_OBS_TOLERANCE", "0.05"))


def _workload():
    return drop_full_machine_jobs(
        generate_trace(SyntheticTraceConfig.lanl_cm5(N_JOBS), rng=0)
    )


def _time_once(workload, observer) -> float:
    t0 = time.perf_counter()
    simulate(
        workload,
        paper_cluster(24.0),
        estimator=SuccessiveApproximation(),
        seed=0,
        observer=observer,
    )
    return time.perf_counter() - t0


def test_null_observer_overhead_bounded(save_artifact):
    workload = _workload()
    variants = {
        "bare": lambda: None,
        "null": NullObserver,
        "jsonl": lambda: JsonlTraceObserver(io.StringIO()),
    }
    best = {name: float("inf") for name in variants}
    for _ in range(REPEATS):  # interleaved: ambient load hits all alike
        for name, make in variants.items():
            best[name] = min(best[name], _time_once(workload, make()))

    null_ratio = best["null"] / best["bare"]
    jsonl_ratio = best["jsonl"] / best["bare"]
    report = "\n".join(
        [
            f"observer overhead ({N_JOBS} jobs, best of {REPEATS}):",
            f"  bare run : {best['bare']:.3f}s",
            f"  null obs : {best['null']:.3f}s  ({null_ratio - 1:+.1%})",
            f"  jsonl obs: {best['jsonl']:.3f}s  ({jsonl_ratio - 1:+.1%})",
        ]
    )
    print("\n" + report)
    save_artifact("obs_overhead", report)

    assert null_ratio <= 1.0 + TOLERANCE, (
        f"null observer costs {null_ratio - 1:.1%} over the bare run "
        f"(tolerance {TOLERANCE:.0%}) — hook sites are no longer free"
    )
    # The JSONL writer does real work; no hard bar, but it must finish and
    # stay within an order of magnitude of the bare run.
    assert jsonl_ratio < 10.0
