"""Engine throughput gate: measure jobs/s and sweep runs/s, fail on regression.

Run via ``make engine-bench`` (or directly: ``PYTHONPATH=src python
benchmarks/engine_bench.py``).  Two measurements:

* **single run** — the Figure 5 configuration (synthetic LANL-CM5-like
  trace at load 0.8, paper cluster, successive approximation, FCFS) timed
  best-of-N (``--rounds``).  Best-of, not mean-of: on shared/noisy hosts the
  scheduler can double a round's wall time, and the *minimum* is the
  cleanest estimate of the code's actual cost (the noise is strictly
  additive).
* **sweep** — a small Figure 8 slice through :func:`run_sweep`, serially
  and (on multi-CPU hosts) through the process pool, reporting runs/s, the
  host CPU count, and the pool spin-up time separately from simulation
  time.

Results go to ``benchmarks/results/BENCH_engine.json`` (machine-readable)
and the script exits non-zero if single-run throughput drops more than 10%
below the recorded pre-optimization baseline in
``benchmarks/results/engine_throughput.txt`` — the floor optimizations must
never sink back under.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.cluster import paper_cluster
from repro.core import SuccessiveApproximation
from repro.experiments.parallel import run_sweep
from repro.experiments.runner import run_point
from repro.experiments.specs import (
    ClusterSpec,
    EstimatorSpec,
    RunSpec,
    WorkloadSpec,
)
from repro.workload import drop_full_machine_jobs, lanl_cm5_like, scale_load

#: jobs/s recorded for the seed engine (benchmarks/results/engine_throughput.txt)
#: on the reference container, before the hot-path optimization pass.
BASELINE_JOBS_PER_S = 24_905.0

#: Fail the gate below this fraction of the baseline.
REGRESSION_FLOOR = 0.9

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_engine.json"


def bench_single_run(n_jobs: int, rounds: int, seed: int = 0) -> dict:
    workload = scale_load(
        drop_full_machine_jobs(lanl_cm5_like(n_jobs=n_jobs, seed=seed)), 0.8
    )
    cluster = paper_cluster(24.0)
    times = []
    result = None
    for _ in range(rounds):
        estimator = SuccessiveApproximation()  # fresh learned state per round
        t0 = time.perf_counter()
        result = run_point(workload, cluster, estimator, seed=seed)
        times.append(time.perf_counter() - t0)
    best = min(times)
    # Events processed: one arrival per job plus one completion per attempt
    # (failed attempts are re-queued directly, without a new arrival event).
    n_events = result.n_jobs + result.n_attempts
    return {
        "n_jobs": result.n_jobs,
        "n_attempts": result.n_attempts,
        "rounds": rounds,
        "times_s": [round(t, 4) for t in times],
        "best_s": round(best, 4),
        "jobs_per_second": round(result.n_jobs / best, 1),
        "events_per_second": round(n_events / best, 1),
    }


def bench_sweep(n_jobs: int, seed: int = 0) -> dict:
    mems = (16.0, 24.0, 32.0)
    specs = [
        RunSpec(
            workload=WorkloadSpec(n_jobs=n_jobs, seed=seed, load=0.8),
            cluster=ClusterSpec(second_tier_mem=m),
            estimator=est,
            seed=seed,
            label=f"{est.name}@tier2={m:g}MB",
        )
        for m in mems
        for est in (EstimatorSpec(name="none"), EstimatorSpec(name="successive"))
    ]
    host_cpus = os.cpu_count() or 1
    serial = run_sweep(specs, max_workers=1)
    doc = {
        "n_specs": len(specs),
        "n_jobs_each": n_jobs,
        "host_cpus": host_cpus,
        "serial_runs_per_second": round(serial.runs_per_second, 3),
        "serial_wall_s": round(serial.wall_time, 3),
    }
    if host_cpus > 1:
        workers = min(host_cpus, 4)
        pooled = run_sweep(specs, max_workers=workers)
        doc.update(
            {
                "pool_workers": pooled.max_workers,
                "pool_runs_per_second": round(pooled.runs_per_second, 3),
                "pool_wall_s": round(pooled.wall_time, 3),
                "pool_spinup_s": round(pooled.pool_spinup_time, 3),
            }
        )
    else:
        doc["pool"] = "skipped (single-CPU host; pool would serialize anyway)"
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=12_000)
    parser.add_argument("--sweep-jobs", type=int, default=2_000)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes, no regression gate (CI pipeline check)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.jobs = min(args.jobs, 2_000)
        args.sweep_jobs = min(args.sweep_jobs, 1_000)
        args.rounds = min(args.rounds, 2)

    single = bench_single_run(args.jobs, args.rounds, args.seed)
    sweep = bench_sweep(args.sweep_jobs, args.seed)

    floor = BASELINE_JOBS_PER_S * REGRESSION_FLOOR
    gated = not args.smoke
    doc = {
        "comment": (
            "machine-readable engine throughput gate; regenerate with "
            "`make engine-bench`"
        ),
        "host_cpus": os.cpu_count() or 1,
        "single_run": single,
        "sweep": sweep,
        "baseline_jobs_per_second": BASELINE_JOBS_PER_S,
        "regression_floor_jobs_per_second": round(floor, 1),
        "gated": gated,
        "passed": (not gated) or single["jobs_per_second"] >= floor,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    print(
        f"engine : {single['jobs_per_second']:,.0f} jobs/s "
        f"({single['events_per_second']:,.0f} events/s; best of "
        f"{single['rounds']} x {single['n_jobs']} jobs, {single['best_s']}s)"
    )
    print(
        f"sweep  : {sweep['serial_runs_per_second']:.2f} runs/s serial"
        + (
            f", {sweep['pool_runs_per_second']:.2f} runs/s with "
            f"{sweep['pool_workers']} workers "
            f"(spin-up {sweep['pool_spinup_s']}s)"
            if "pool_runs_per_second" in sweep
            else f" (host has {sweep['host_cpus']} CPU; pool skipped)"
        )
    )
    print(f"wrote  : {RESULTS_PATH}")
    if not gated:
        print("gate   : skipped (smoke mode)")
        return 0
    if not doc["passed"]:
        print(
            f"FAIL: {single['jobs_per_second']:,.0f} jobs/s is below the "
            f"regression floor {floor:,.0f} jobs/s "
            f"({REGRESSION_FLOOR:.0%} of the recorded baseline "
            f"{BASELINE_JOBS_PER_S:,.0f})",
            file=sys.stderr,
        )
        return 1
    print(
        f"PASS: above the {REGRESSION_FLOOR:.0%} regression floor of the "
        f"recorded {BASELINE_JOBS_PER_S:,.0f} jobs/s baseline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
