"""Engine throughput gate: measure jobs/s and sweep runs/s, fail on regression.

Run via ``make engine-bench`` (or directly: ``PYTHONPATH=src python
benchmarks/engine_bench.py``).  Two measurements:

* **single run** — the Figure 5 configuration (synthetic LANL-CM5-like
  trace at load 0.8, paper cluster, successive approximation, FCFS) timed
  best-of-N (``--rounds``).  Best-of, not mean-of: on shared/noisy hosts the
  scheduler can double a round's wall time, and the *minimum* is the
  cleanest estimate of the code's actual cost (the noise is strictly
  additive).
* **sweep** — a small Figure 8 slice through :func:`run_sweep`, serially
  and (on multi-CPU hosts) through the process pool, reporting runs/s, the
  host CPU count, and the pool spin-up time separately from simulation
  time.

* **batched** — the same configuration as K lock-step configs (varied
  estimator alphas) through :func:`repro.sim.batch.simulate_batch`,
  reporting amortized per-config jobs/s and the speedup over the scalar
  single run, plus a bit-identity check of lane 0 against its scalar twin.

Results go to ``benchmarks/results/BENCH_engine.json`` (machine-readable).
The regression baseline is *read from that same file* (the
``baseline_jobs_per_second`` field of the previous run), so the floor
ratchets with the recorded history instead of a hardcoded source constant;
``--rebaseline`` re-pins it to this run's measurement.  The script exits
non-zero if single-run throughput drops more than 10% below the baseline,
if the batched speedup at K=8 falls under 4.5x, or if the batched lane
stops being bit-identical to the scalar engine.  ``--k-sweep`` additionally
records the amortized width profile at K in {1, 2, 4, 8, 16}.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.cluster import paper_cluster
from repro.core import SuccessiveApproximation
from repro.experiments.parallel import run_sweep
from repro.experiments.runner import run_point
from repro.experiments.specs import (
    ClusterSpec,
    EstimatorSpec,
    RunSpec,
    WorkloadSpec,
)
from repro.sim.batch import BatchConfig, simulate_batch
from repro.workload import drop_full_machine_jobs, lanl_cm5_like, scale_load

#: jobs/s recorded for the seed engine on the reference container, before
#: the hot-path optimization pass.  Used only when BENCH_engine.json does
#: not exist yet (first run on a fresh checkout).
SEED_BASELINE_JOBS_PER_S = 24_905.0

#: Fail the gate below this fraction of the baseline.
REGRESSION_FLOOR = 0.9

#: Minimum amortized per-config speedup for the batched block (the ROADMAP
#: 5x stretch is met; the gate floor trails it with ~10% headroom for
#: host noise).
BATCHED_SPEEDUP_FLOOR = 4.5

#: Per-lane successive-approximation alphas for the batched measurement —
#: varied so the lanes genuinely diverge (different estimates, schedules,
#: and failure patterns) instead of replaying one trajectory K times.
#: Lane 0 keeps the estimator default (2.0) so it has an exact scalar twin
#: for the bit-identity check.  16 values so ``--k-sweep`` reaches K=16
#: without recycling a lane configuration.
BATCHED_ALPHAS = (
    2.0, 1.5, 2.5, 3.0, 1.75, 2.25, 2.75, 4.0,
    1.25, 3.5, 1.6, 2.4, 3.25, 1.9, 2.1, 3.75,
)

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_engine.json"


def load_baseline(path: Path = RESULTS_PATH) -> float:
    """The regression baseline: last recorded value in BENCH_engine.json,
    falling back to the seed constant on a fresh checkout."""
    try:
        doc = json.loads(path.read_text())
        return float(doc["baseline_jobs_per_second"])
    except (OSError, ValueError, KeyError, TypeError):
        return SEED_BASELINE_JOBS_PER_S


def bench_single_run(n_jobs: int, rounds: int, seed: int = 0) -> dict:
    workload = scale_load(
        drop_full_machine_jobs(lanl_cm5_like(n_jobs=n_jobs, seed=seed)), 0.8
    )
    cluster = paper_cluster(24.0)
    times = []
    result = None
    for _ in range(rounds):
        estimator = SuccessiveApproximation()  # fresh learned state per round
        t0 = time.perf_counter()
        result = run_point(workload, cluster, estimator, seed=seed)
        times.append(time.perf_counter() - t0)
    best = min(times)
    # Events processed: one arrival per job plus one completion per attempt
    # (failed attempts are re-queued directly, without a new arrival event).
    n_events = result.n_jobs + result.n_attempts
    return {
        "n_jobs": result.n_jobs,
        "n_attempts": result.n_attempts,
        "rounds": rounds,
        "times_s": [round(t, 4) for t in times],
        "best_s": round(best, 4),
        "jobs_per_second": round(result.n_jobs / best, 1),
        "events_per_second": round(n_events / best, 1),
    }


def bench_batched(
    n_jobs: int, k: int, rounds: int, seed: int = 0,
    scalar_jobs_per_s: float = 0.0,
) -> dict:
    """K configs lock-step through simulate_batch, amortized per-config.

    Matches the sweep executor's usage (``collect_attempts=False``); the
    scalar comparison point is the single-run block measured by
    :func:`bench_single_run` (same workload, same collection mode).
    """
    workload = scale_load(
        drop_full_machine_jobs(lanl_cm5_like(n_jobs=n_jobs, seed=seed)), 0.8
    )
    n = len(workload.jobs)
    times = []
    results = None
    for _ in range(rounds):
        configs = [  # fresh estimator + cluster state per round
            BatchConfig(
                cluster=paper_cluster(24.0),
                estimator=SuccessiveApproximation(
                    alpha=BATCHED_ALPHAS[i % len(BATCHED_ALPHAS)]
                ),
                seed=seed,
            )
            for i in range(k)
        ]
        t0 = time.perf_counter()
        results = simulate_batch(workload, configs, collect_attempts=False)
        times.append(time.perf_counter() - t0)
    best = min(times)
    amortized = k * n / best
    # Lane 0 runs the estimator default (alpha=2.0): its scalar twin is the
    # plain run_point configuration, and the fingerprints must agree.
    scalar_twin = run_point(
        workload, paper_cluster(24.0), SuccessiveApproximation(), seed=seed
    )
    bit_identical = results[0].fingerprint() == scalar_twin.fingerprint()
    return {
        "k": k,
        "n_jobs": n,
        "rounds": rounds,
        "alphas": list(BATCHED_ALPHAS[:k]),
        "collect_attempts": False,
        "times_s": [round(t, 4) for t in times],
        "best_s": round(best, 4),
        "amortized_jobs_per_second": round(amortized, 1),
        "speedup_vs_single_run": (
            round(amortized / scalar_jobs_per_s, 2) if scalar_jobs_per_s else None
        ),
        "bit_identical": bit_identical,
    }


#: Lane counts measured by ``--k-sweep``.
K_SWEEP_POINTS = (1, 2, 4, 8, 16)


def bench_k_sweep(
    n_jobs: int, rounds: int, seed: int = 0,
    scalar_jobs_per_s: float = 0.0,
) -> list:
    """Amortized batched throughput across the ``K_SWEEP_POINTS`` widths.

    One :func:`bench_batched` block per K — each point keeps its own
    bit-identity check, so the sweep doubles as a widened-lane smoke test
    at every width.
    """
    return [
        bench_batched(
            n_jobs, k, rounds, seed, scalar_jobs_per_s=scalar_jobs_per_s
        )
        for k in K_SWEEP_POINTS
    ]


def bench_sweep(n_jobs: int, seed: int = 0) -> dict:
    mems = (16.0, 24.0, 32.0)
    specs = [
        RunSpec(
            workload=WorkloadSpec(n_jobs=n_jobs, seed=seed, load=0.8),
            cluster=ClusterSpec(second_tier_mem=m),
            estimator=est,
            seed=seed,
            label=f"{est.name}@tier2={m:g}MB",
        )
        for m in mems
        for est in (EstimatorSpec(name="none"), EstimatorSpec(name="successive"))
    ]
    host_cpus = os.cpu_count() or 1
    serial = run_sweep(specs, max_workers=1)
    doc = {
        "n_specs": len(specs),
        "n_jobs_each": n_jobs,
        "host_cpus": host_cpus,
        "serial_runs_per_second": round(serial.runs_per_second, 3),
        "serial_wall_s": round(serial.wall_time, 3),
    }
    if host_cpus > 1:
        workers = min(host_cpus, 4)
        pooled = run_sweep(specs, max_workers=workers)
        doc.update(
            {
                "pool_workers": pooled.max_workers,
                "pool_runs_per_second": round(pooled.runs_per_second, 3),
                "pool_wall_s": round(pooled.wall_time, 3),
                "pool_spinup_s": round(pooled.pool_spinup_time, 3),
            }
        )
    else:
        doc["pool"] = "skipped (single-CPU host; pool would serialize anyway)"
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=12_000)
    parser.add_argument("--sweep-jobs", type=int, default=2_000)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--batch-k", type=int, default=8,
        help="lane count for the batched measurement (default 8)",
    )
    parser.add_argument(
        "--k-sweep", action="store_true",
        help="also record amortized throughput at K in "
        f"{K_SWEEP_POINTS} (each width bit-identity checked)",
    )
    parser.add_argument(
        "--rebaseline", action="store_true",
        help="re-pin the regression baseline to this run's jobs/s",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes, no regression gate (CI pipeline check)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.jobs = min(args.jobs, 2_000)
        args.sweep_jobs = min(args.sweep_jobs, 1_000)
        args.rounds = min(args.rounds, 2)

    baseline = load_baseline()
    single = bench_single_run(args.jobs, args.rounds, args.seed)
    batched = bench_batched(
        args.jobs, args.batch_k, args.rounds, args.seed,
        scalar_jobs_per_s=single["jobs_per_second"],
    )
    k_sweep = None
    if args.k_sweep:
        k_sweep = bench_k_sweep(
            args.jobs, args.rounds, args.seed,
            scalar_jobs_per_s=single["jobs_per_second"],
        )
    sweep = bench_sweep(args.sweep_jobs, args.seed)

    if args.rebaseline:
        baseline = single["jobs_per_second"]
    floor = baseline * REGRESSION_FLOOR
    gated = not args.smoke
    single_ok = single["jobs_per_second"] >= floor
    batched_ok = (
        batched["bit_identical"]
        and (batched["speedup_vs_single_run"] or 0.0) >= BATCHED_SPEEDUP_FLOOR
    )
    doc = {
        "comment": (
            "machine-readable engine throughput gate; regenerate with "
            "`make engine-bench` (re-pin the baseline with --rebaseline)"
        ),
        "host_cpus": os.cpu_count() or 1,
        "single_run": single,
        "batched": batched,
        "sweep": sweep,
        "baseline_jobs_per_second": baseline,
        "regression_floor_jobs_per_second": round(floor, 1),
        "batched_speedup_floor": BATCHED_SPEEDUP_FLOOR,
        "gated": gated,
        "passed": (not gated) or (single_ok and batched_ok),
    }
    if k_sweep is None:
        # Not re-measured this run: carry the last recorded K sweep forward
        # so the file keeps its width profile between --k-sweep runs.
        try:
            k_sweep = json.loads(RESULTS_PATH.read_text()).get("k_sweep")
        except (OSError, ValueError):
            k_sweep = None
    if k_sweep is not None:
        doc["k_sweep"] = k_sweep
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    print(
        f"engine : {single['jobs_per_second']:,.0f} jobs/s "
        f"({single['events_per_second']:,.0f} events/s; best of "
        f"{single['rounds']} x {single['n_jobs']} jobs, {single['best_s']}s)"
    )
    print(
        f"batched: {batched['amortized_jobs_per_second']:,.0f} jobs/s "
        f"amortized over K={batched['k']} lanes "
        f"({batched['speedup_vs_single_run']}x vs single run; "
        f"bit-identical: {batched['bit_identical']})"
    )
    if args.k_sweep:
        profile = ", ".join(
            f"K={p['k']}: {p['speedup_vs_single_run']}x" for p in k_sweep
        )
        print(f"k-sweep: {profile}")
    print(
        f"sweep  : {sweep['serial_runs_per_second']:.2f} runs/s serial"
        + (
            f", {sweep['pool_runs_per_second']:.2f} runs/s with "
            f"{sweep['pool_workers']} workers "
            f"(spin-up {sweep['pool_spinup_s']}s)"
            if "pool_runs_per_second" in sweep
            else f" (host has {sweep['host_cpus']} CPU; pool skipped)"
        )
    )
    print(f"wrote  : {RESULTS_PATH}")
    if args.rebaseline:
        print(f"rebased: baseline re-pinned to {baseline:,.1f} jobs/s")
    if not gated:
        print("gate   : skipped (smoke mode)")
        return 0
    if not batched["bit_identical"]:
        print(
            "FAIL: batched lane 0 is no longer bit-identical to its scalar "
            "twin — the fast lane has diverged from the reference engine",
            file=sys.stderr,
        )
        return 1
    if not single_ok:
        print(
            f"FAIL: {single['jobs_per_second']:,.0f} jobs/s is below the "
            f"regression floor {floor:,.0f} jobs/s "
            f"({REGRESSION_FLOOR:.0%} of the recorded baseline "
            f"{baseline:,.0f})",
            file=sys.stderr,
        )
        return 1
    if not batched_ok:
        print(
            f"FAIL: batched speedup {batched['speedup_vs_single_run']}x at "
            f"K={batched['k']} is below the {BATCHED_SPEEDUP_FLOOR:g}x floor",
            file=sys.stderr,
        )
        return 1
    print(
        f"PASS: single run above the {REGRESSION_FLOOR:.0%} floor of the "
        f"recorded {baseline:,.0f} jobs/s baseline; batched "
        f"{batched['speedup_vs_single_run']}x >= "
        f"{BATCHED_SPEEDUP_FLOOR:g}x at K={batched['k']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
