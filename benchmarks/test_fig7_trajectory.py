"""FIG7 bench: regenerate Figure 7 (per-group estimate trajectory).

Paper claims checked, exactly: requested 32 MB, actual ~5 MB, alpha=2,
beta=0 — the estimate halves (32, 16, 8), the 4 MB attempt fails, and the
group settles at 8 MB: "a four-fold reduction in memory resources".
"""

from conftest import run_once

from repro.experiments import fig7


def test_fig7_estimate_trajectory(benchmark, bench_config, save_artifact):
    result = run_once(benchmark, lambda: fig7.run(bench_config))
    save_artifact("fig7", result.format_table() + "\n\n" + result.format_chart())

    assert result.estimates[:5] == [32.0, 16.0, 8.0, 4.0, 8.0]
    assert result.n_failures == 1
    assert result.final_estimate == 8.0
    assert result.reduction_factor == 4.0
