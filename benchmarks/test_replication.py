"""EXT bench: seed replication of the Figure 5 headline.

Not a paper artifact — the statistical-rigor companion to FIG5: the
improvement must be large and *consistent* across independent trace seeds,
not a one-seed fluke.
"""

import dataclasses

from conftest import run_once

from repro.experiments import replication


def test_headline_replicates_across_seeds(benchmark, bench_config, bench_workers_count, save_artifact):
    cfg = dataclasses.replace(bench_config, n_jobs=min(bench_config.n_jobs, 8_000))
    result = run_once(
        benchmark,
        lambda: replication.run(cfg, seeds=(0, 1, 2, 3, 4), max_workers=bench_workers_count),
    )
    save_artifact("replication", result.format_table())

    # Every single seed shows a solid improvement...
    assert all(p.improvement > 0.2 for p in result.points)
    # ...slowdown never got worse...
    assert all(p.slowdown_ratio >= 0.95 for p in result.points)
    # ...failures stay conservative everywhere...
    assert all(p.frac_failed < 0.01 for p in result.points)
    # ...and the mean is in the paper's ballpark with bounded spread.
    assert result.mean_improvement > 0.35
    assert result.std_improvement < 0.35
