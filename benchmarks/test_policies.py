"""EXT bench: the §3.1 policy conjecture, as a first-class experiment.

"We expect that the results of cluster utilization with more aggressive
scheduling policies like backfilling will be correlated with those for
FCFS" — verified by running the with/without-estimation comparison under
FCFS, SJF and EASY backfilling.
"""

import dataclasses

from conftest import run_once

from repro.experiments import policies_exp


def test_policy_conjecture(benchmark, bench_config, save_artifact):
    cfg = dataclasses.replace(bench_config, n_jobs=min(bench_config.n_jobs, 8_000))
    result = run_once(benchmark, lambda: policies_exp.run(cfg, load=0.8))
    save_artifact("policies", result.format_table())

    assert result.conjecture_holds
    # FCFS (the paper's policy) shows the textbook improvement.
    assert result.row("fcfs").improvement > 0.25
    # The benefit is not an artifact of FCFS head-of-line blocking: even the
    # policy that already fights blocking (EASY) gains clearly.
    assert result.row("easy-backfilling").improvement > 0.10
    for row in result.rows:
        assert row.frac_failed < 0.02
