"""Benchmark-suite configuration.

Each benchmark regenerates one paper artifact (figure or table), asserts its
qualitative shape, and writes the rendered table/chart to
``benchmarks/results/<id>.txt`` so the regenerated artifacts live alongside
the timings.  EXPERIMENTS.md records the paper-vs-measured comparison.

Scale knobs (environment variables):

* ``REPRO_BENCH_JOBS``  — trace length (default 12000; the paper's trace is
  122055 and takes a few minutes end to end),
* ``REPRO_BENCH_FULL=1`` — shorthand for the full paper-scale run,
* ``REPRO_BENCH_WORKERS`` — process-pool size for the sweep experiments
  (default 1 = the serial path; ``make sweep-bench`` raises it so the suite
  exercises the parallel executor).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig

RESULTS_DIR = Path(__file__).parent / "results"


def bench_n_jobs() -> int:
    if os.environ.get("REPRO_BENCH_FULL") == "1":
        return 122_055
    return int(os.environ.get("REPRO_BENCH_JOBS", "12000"))


def bench_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(n_jobs=bench_n_jobs())


@pytest.fixture(scope="session")
def bench_workers_count() -> int:
    """Pool size for sweep-capable experiments (1 = in-process serial)."""
    return bench_workers()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_artifact(results_dir):
    """Write a regenerated figure/table to benchmarks/results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _save


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer.

    These are end-to-end simulation experiments (seconds to minutes), not
    micro-benchmarks; repetition would multiply runtime for no insight.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
