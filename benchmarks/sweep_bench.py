"""Sweep throughput gate: end-to-end Figure 5 fan-out, fail on regression.

Run via ``make sweep-bench`` (or directly: ``PYTHONPATH=src python
benchmarks/sweep_bench.py``).  One measurement: the full Figure 5 sweep
(two estimator configurations x the ``ExperimentConfig`` load grid, 20k-job
synthetic LANL-CM5-like trace) executed through :func:`run_sweep` with a
forced process pool (``oversubscribe=True`` — the gate measures the
executor's data plane, not the host's core count), timed end to end
including pool spin-up and the parent's shared-memory publish.

Two baselines are recorded below:

* ``PRE_*`` — the executor before the columnar data plane (object-per-job
  parsing, per-worker trace generation, one future per spec), measured on
  the reference container.  Reported as ``speedup_vs_pre`` / RSS reduction;
  the PR's acceptance bar was >=1.5x throughput at 4 workers with lower
  per-worker RSS.
* ``BASELINE_RUNS_PER_S`` — the columnar executor itself.  This is the
  **gate**: the script exits non-zero when measured throughput drops more
  than 10% below it, so the data plane can never quietly sink back.

Results go to ``benchmarks/results/BENCH_sweep.json`` (machine-readable).
``--smoke`` runs a tiny grid and skips the gate — CI uses it to prove the
pipeline works without paying the full sweep or tripping on shared-runner
noise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import run_sweep
from repro.experiments.specs import (
    ClusterSpec,
    EstimatorSpec,
    RunSpec,
    WorkloadSpec,
)

#: Pre-data-plane executor on the reference container (4 workers, 1 CPU,
#: oversubscribed): the numbers the PR's speedup/RSS claims compare against.
PRE_WALL_S = 22.59
PRE_RUNS_PER_S = 0.885
PRE_PEAK_WORKER_RSS_KB = 74_208

#: runs/s recorded for the columnar data plane with lock-step batching
#: (the batched engine advancing same-trace spec pairs together) on the
#: reference container — the regression baseline this gate enforces.
#: Typical measurements land at 5.7-6.1 runs/s with occasional ~4.6
#: outliers (single-CPU container noise), so the baseline is pinned
#: below the typical band; pre-batching the same configuration measured
#: 1.63 runs/s, far under the 90% floor either way.
BASELINE_RUNS_PER_S = 5.0

#: Fail the gate below this fraction of the baseline.
REGRESSION_FLOOR = 0.9

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_sweep.json"


def fig5_specs(cfg: ExperimentConfig, n_jobs: int, loads=None) -> list:
    """The Figure 5 grid: {no estimation, successive approximation} x loads."""
    loads = cfg.loads if loads is None else loads
    return [
        RunSpec(
            workload=WorkloadSpec(n_jobs=n_jobs, seed=cfg.seed, load=load),
            cluster=ClusterSpec(second_tier_mem=cfg.second_tier_mem),
            estimator=est,
            seed=cfg.seed,
            label=f"{est.name}@{load:g}",
        )
        for est in (
            EstimatorSpec(name="none"),
            EstimatorSpec.make("successive", alpha=cfg.alpha, beta=cfg.beta),
        )
        for load in loads
    ]


def bench_sweep(
    workers: int, n_jobs: int, loads=None, batch_size=None
) -> dict:
    cfg = ExperimentConfig()
    specs = fig5_specs(cfg, n_jobs, loads)
    t0 = time.perf_counter()
    report = run_sweep(
        specs, max_workers=workers, oversubscribe=True, batch_size=batch_size
    )
    wall = time.perf_counter() - t0
    report.points()  # raises with full tracebacks if any spec failed
    profile = report.profile()
    return {
        "n_specs": len(specs),
        "n_jobs_each": n_jobs,
        "workers": report.max_workers,
        "host_cpus": report.host_cpus,
        "wall_s": round(wall, 3),
        "pool_spinup_s": round(report.pool_spinup_time, 3),
        "runs_per_second": round(len(specs) / wall, 3),
        "peak_worker_rss_kb": report.peak_worker_rss_kb,
        "n_retries": report.n_retries,
        "n_pool_rebuilds": report.n_pool_rebuilds,
        "n_batched_runs": profile.n_batched,
        "mean_batch_width": round(profile.mean_batch_width, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--jobs", type=int, default=ExperimentConfig().n_jobs,
        help="trace size per spec (default: the Figure 5 configuration)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None,
        help=(
            "same-trace lock-step batch width for the executor "
            "(default: $REPRO_BATCH_SIZE, else adaptive up to 16; 1 disables batching)"
        ),
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny grid, no regression gate (CI pipeline check)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        sweep = bench_sweep(args.workers, n_jobs=min(args.jobs, 1500),
                            loads=(0.8, 1.0), batch_size=args.batch_size)
    else:
        sweep = bench_sweep(args.workers, n_jobs=args.jobs,
                            batch_size=args.batch_size)

    floor = BASELINE_RUNS_PER_S * REGRESSION_FLOOR
    gated = not args.smoke and args.jobs == ExperimentConfig().n_jobs
    doc = {
        "comment": (
            "machine-readable sweep throughput gate; regenerate with "
            "`make sweep-bench`"
        ),
        "sweep": sweep,
        "pre_data_plane": {
            "wall_s": PRE_WALL_S,
            "runs_per_second": PRE_RUNS_PER_S,
            "peak_worker_rss_kb": PRE_PEAK_WORKER_RSS_KB,
        },
        "speedup_vs_pre": round(sweep["runs_per_second"] / PRE_RUNS_PER_S, 3),
        "worker_rss_reduction_vs_pre": round(
            1.0 - sweep["peak_worker_rss_kb"] / PRE_PEAK_WORKER_RSS_KB, 3
        ) if sweep["peak_worker_rss_kb"] else None,
        "baseline_runs_per_second": BASELINE_RUNS_PER_S,
        "regression_floor_runs_per_second": round(floor, 3),
        "gated": gated,
        "passed": (not gated) or sweep["runs_per_second"] >= floor,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    print(
        f"sweep  : {sweep['n_specs']} specs x {sweep['n_jobs_each']} jobs in "
        f"{sweep['wall_s']}s = {sweep['runs_per_second']:.3f} runs/s "
        f"({sweep['workers']} workers on {sweep['host_cpus']} CPU(s), "
        f"spin-up {sweep['pool_spinup_s']}s)"
    )
    print(
        f"batch  : {sweep['n_batched_runs']}/{sweep['n_specs']} runs in "
        f"lock-step batches (mean width {sweep['mean_batch_width']})"
    )
    print(
        f"memory : peak worker RSS {sweep['peak_worker_rss_kb']:,} KB "
        f"(pre-data-plane: {PRE_PEAK_WORKER_RSS_KB:,} KB)"
    )
    print(
        f"vs pre : {doc['speedup_vs_pre']:.2f}x throughput "
        f"({PRE_RUNS_PER_S} -> {sweep['runs_per_second']} runs/s)"
    )
    print(f"wrote  : {RESULTS_PATH}")
    if not gated:
        print("gate   : skipped (smoke mode or non-default trace size)")
        return 0
    if not doc["passed"]:
        print(
            f"FAIL: {sweep['runs_per_second']:.3f} runs/s is below the "
            f"regression floor {floor:.3f} runs/s "
            f"({REGRESSION_FLOOR:.0%} of the recorded baseline "
            f"{BASELINE_RUNS_PER_S})",
            file=sys.stderr,
        )
        return 1
    print(
        f"PASS: above the {REGRESSION_FLOOR:.0%} regression floor of the "
        f"recorded {BASELINE_RUNS_PER_S} runs/s baseline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
