"""SWEEP bench: the parallel executor and result cache on the Figure 8 grid.

Not a paper artifact — the throughput companion to ``engine_throughput.txt``:
it measures the multi-process fan-out (``REPRO_BENCH_WORKERS``) and the
warm-cache path on a representative slice of the Figure 8 second-tier sweep,
asserts cache correctness (a repeated sweep is 100% hits and point-for-point
identical), and writes the measured wall times to
``benchmarks/results/sweep_throughput.txt``.
"""

import os
import time

from conftest import bench_workers, run_once

from repro.experiments.cache import SweepCache
from repro.experiments.parallel import run_sweep
from repro.experiments.specs import (
    ClusterSpec,
    EstimatorSpec,
    RunSpec,
    WorkloadSpec,
)

MEMS = (16.0, 20.0, 24.0, 28.0, 32.0)


def _specs(cfg, load=0.8):
    workload = WorkloadSpec(n_jobs=cfg.n_jobs, seed=cfg.seed, load=load)
    estimators = (
        EstimatorSpec(name="none"),
        EstimatorSpec.make("successive", alpha=cfg.alpha, beta=cfg.beta),
    )
    return [
        RunSpec(
            workload=workload,
            cluster=ClusterSpec(second_tier_mem=m),
            estimator=est,
            seed=cfg.seed,
            label=f"{est.name}@tier2={m:g}MB",
        )
        for m in MEMS
        for est in estimators
    ]


def test_sweep_executor_throughput(benchmark, bench_config, save_artifact, tmp_path):
    specs = _specs(bench_config)
    workers = max(bench_workers(), 2)
    cache = SweepCache(tmp_path / "sweepcache")

    serial = run_sweep(specs)  # the degenerate max_workers=1 reference

    # oversubscribe: this benchmark exercises the pool machinery even on
    # hosts with fewer CPUs than workers (where run_sweep would otherwise
    # auto-fall back to the serial path).
    cold = run_once(
        benchmark,
        lambda: run_sweep(
            specs, max_workers=workers, cache=cache, oversubscribe=True
        ),
    )
    assert cold.n_errors == 0
    assert cold.n_cache_hits == 0
    # Worker/in-process parity: the pool returns the exact serial points.
    assert cold.points() == serial.points()

    t0 = time.perf_counter()
    warm = run_sweep(
        specs,
        max_workers=workers,
        cache=SweepCache(tmp_path / "sweepcache"),
        oversubscribe=True,
    )
    warm_wall = time.perf_counter() - t0

    # A repeated sweep is served entirely from the cache, returns identical
    # points, and skips the simulations (>= 2x wall-time reduction; in
    # practice it is orders of magnitude).
    assert warm.n_cache_hits == len(specs)
    assert warm.points() == cold.points()
    assert warm_wall < cold.wall_time / 2

    rows = (
        ("serial (workers=1)", f"{serial.wall_time:.2f}s  ({serial.runs_per_second:.2f} runs/s)"),
        (f"pool (workers={workers})", f"{cold.wall_time:.2f}s  ({cold.runs_per_second:.2f} runs/s)"),
        (
            "pool spin-up",
            f"{cold.pool_spinup_time:.2f}s  (separate from simulation time)",
        ),
        (
            "warm cache",
            f"{warm_wall:.2f}s  ({warm.n_cache_hits}/{len(specs)} cache hits, "
            f"{cold.wall_time / warm_wall:.0f}x faster than cold)",
        ),
    )
    save_artifact(
        "sweep_throughput",
        f"fig8-slice sweep ({len(specs)} runs, {bench_config.n_jobs} jobs each, "
        f"host cpus={cold.host_cpus or os.cpu_count()}):\n"
        + "\n".join(f"  {name:<20} {value}" for name, value in rows),
    )
