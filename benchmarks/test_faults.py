"""EXT bench: fault injection — §2.1's "faulty machines" at machine level.

Regenerates the fault-injection study (node failure/repair processes swept
over per-node MTBF) and checks the tentpole claims: fault kills degrade the
implicit-feedback estimator, the explicit guard is nearly insensitive, and
the clean (MTBF = inf) column reproduces the fault-free results exactly.
"""

import dataclasses
import math

from conftest import run_once

from repro.experiments import faults


def test_fault_injection_sensitivity(benchmark, bench_config, save_artifact):
    cfg = dataclasses.replace(bench_config, n_jobs=min(bench_config.n_jobs, 10_000))
    result = run_once(benchmark, lambda: faults.run(cfg))
    save_artifact("faults", result.format_table() + "\n\n" + result.format_chart())

    def util_at(variant, mtbf):
        return next(
            p.utilization
            for p in result.points
            if p.variant == variant and p.node_mtbf == mtbf
        )

    flakiest = min(p.node_mtbf for p in result.points)

    # Clean cluster: estimation beats the baseline clearly (as in Figure 5).
    assert util_at("implicit", math.inf) > util_at("no-estimation", math.inf) * 1.2

    # Faults actually happened at the flaky end and killed running jobs.
    flaky_points = [p for p in result.points if p.node_mtbf == flakiest]
    assert all(p.n_node_failures > 0 for p in flaky_points)
    assert any(p.n_fault_kills > 0 for p in flaky_points)

    # The explicit guard shrugs off fault kills that degrade implicit
    # feedback, in both utilization and estimation activity.
    assert result.degradation("explicit-guard") <= result.degradation("implicit")
    assert util_at("explicit-guard", flakiest) >= util_at("implicit", flakiest) * 0.98
    assert result.reduction_lost("explicit-guard") <= (
        result.reduction_lost("implicit") + 0.01
    )
