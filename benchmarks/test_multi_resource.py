"""EXT bench: multi-resource estimation under full scheduling dynamics.

§2.3's generalization evaluated end to end: a synthetic multi-resource
workload (memory + scratch disk) on a cluster whose machine classes differ
in both, scheduled FCFS with and without coordinate-descent estimation.
Checks the single-resource story carries over: estimation unlocks the small
machine classes, improves utilization, and stays conservative.
"""

from conftest import run_once

from repro.core.multi_resource import CoordinateDescentEstimator
from repro.experiments.render import format_table
from repro.sim.multi import MultiSimulation
from repro.workload.multi import (
    MultiTraceConfig,
    default_multi_cluster,
    generate_multi_trace,
)


def make_workload(n_jobs=1500, seed=0):
    return generate_multi_trace(MultiTraceConfig(n_jobs=n_jobs), rng=seed)


def test_multi_resource_estimation(benchmark, bench_config, save_artifact):
    def run():
        base = MultiSimulation(make_workload(), default_multi_cluster(), seed=1).run()
        est = MultiSimulation(
            make_workload(),
            default_multi_cluster(),
            estimator=CoordinateDescentEstimator(alpha=2.0),
            seed=1,
        ).run()
        return base, est

    base, est = run_once(benchmark, run)
    save_artifact(
        "multi_resource",
        format_table(
            ["configuration", "utilization", "failed exec", "reduced submissions"],
            [
                ("no estimation", f"{base.utilization:.3f}", f"{base.frac_failed:.3%}", "0%"),
                (
                    "coordinate descent",
                    f"{est.utilization:.3f}",
                    f"{est.frac_failed:.3%}",
                    f"{est.n_reduced_submissions / est.n_attempts:.0%}",
                ),
            ],
            title="Multi-resource estimation (mem + disk, 64x large + 64x small nodes)",
        ),
    )

    assert len(base.outcomes) == len(est.outcomes) == 1500
    # The single-resource story carries over to two resources.
    assert est.utilization > base.utilization * 1.1
    assert est.n_reduced_submissions > 0
    # Failure budget: with ~125 groups of ~12 jobs and two coordinates to
    # probe, the exploration cost is a couple of failures per group — an
    # order of magnitude above the single-resource experiments (whose groups
    # are larger and probe one axis), but still far below the 80% of
    # submissions that ran reduced.
    assert est.frac_failed < 0.08
