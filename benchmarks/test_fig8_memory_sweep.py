"""FIG8 bench: regenerate Figure 8 (utilization ratio vs second-tier memory)
plus the §3.2 conservativeness statistics (STAT-CONS in DESIGN.md).

Paper claims checked: improvement confined to the 16-28 MB band with the
hard 16 MB wall (32/alpha), neutrality at 32 MB (homogeneous), and a strong
linear relationship between the benefiting-job node count and the measured
improvement (paper R^2 = 0.991).
"""

import numpy as np

from conftest import run_once

from repro.experiments import fig8


def test_fig8_second_tier_sweep(benchmark, bench_config, bench_workers_count, save_artifact):
    result = run_once(
        benchmark, lambda: fig8.run(bench_config, max_workers=bench_workers_count)
    )
    save_artifact("fig8", result.format_table() + "\n\n" + result.format_chart())

    # The 16MB wall: negligible improvement below, substantial inside.
    assert result.improvement_below_band < 0.08
    assert result.improvement_in_band > 0.20
    # Homogeneous cluster: estimation is a no-op.
    at32 = [p for p in result.points if p.second_tier_mem == 32.0]
    assert at32 and abs(at32[0].ratio - 1.0) < 0.02
    # The cluster-design relationship (paper: R^2 = 0.991 over the band).
    assert result.node_count_fit is not None
    assert result.node_count_fit.slope > 0
    assert result.node_count_fit.r_squared > 0.7

    # STAT-CONS, across every cluster configuration in the sweep:
    # "at most only 0.01% of job executions resulted in failure ... while
    # 15%-40% of jobs were successfully submitted for execution with lower
    # estimated resources".  Our synthetic usage spread makes failures a few
    # tenths of a percent rather than 0.01% — still three orders of
    # magnitude fewer failures than reduced submissions.
    assert result.max_frac_failed < 0.05
    lo, hi = result.reduced_range
    assert hi >= 0.15
