"""EXT bench: the §2.1 false-positive study.

Checks the paper's qualitative claim: implicit feedback degrades under
spurious failures (the estimator backs off after crashes that had nothing
to do with resources), while the explicit guard — comparing granted capacity
with actual usage — filters them out and retains (more of) the benefit.
"""

import dataclasses

from conftest import run_once

from repro.experiments import falsepositives


def test_false_positive_sensitivity(benchmark, bench_config, save_artifact):
    cfg = dataclasses.replace(bench_config, n_jobs=min(bench_config.n_jobs, 10_000))
    result = run_once(benchmark, lambda: falsepositives.run(cfg))
    save_artifact(
        "falsepositives", result.format_table() + "\n\n" + result.format_chart()
    )

    # With no noise, both estimation variants beat the baseline clearly.
    def util_at(variant, prob):
        return next(
            p.utilization
            for p in result.points
            if p.variant == variant and p.spurious_prob == prob
        )

    assert util_at("implicit", 0.0) > util_at("no-estimation", 0.0) * 1.2
    assert util_at("explicit-guard", 0.0) > util_at("no-estimation", 0.0) * 1.2

    # Under heavy noise the guard retains at least as much utilization as
    # the confused implicit variant.
    assert util_at("explicit-guard", 0.10) >= util_at("implicit", 0.10) * 0.98

    # And the guard's *estimation activity* (reduced submissions) survives
    # noise better than the implicit variant's.
    def reduced_at(variant, prob):
        return next(
            p.frac_reduced
            for p in result.points
            if p.variant == variant and p.spurious_prob == prob
        )

    assert reduced_at("explicit-guard", 0.10) >= reduced_at("implicit", 0.10)
