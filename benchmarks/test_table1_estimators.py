"""TAB1 bench: the estimator taxonomy head-to-head (paper Table 1).

The paper evaluates only the similarity row (successive approximation); the
no-similarity row is its future-work roadmap.  This bench runs all four plus
the baseline and the oracle, checking the taxonomy's qualitative ordering.
"""

from conftest import run_once

from repro.experiments import table1


def test_table1_estimator_taxonomy(benchmark, bench_config, save_artifact):
    result = run_once(benchmark, lambda: table1.run(bench_config))
    save_artifact("table1", result.format_table())

    base = result.baseline
    oracle = result.row("oracle")

    # The oracle brackets everything from above; the baseline from below.
    for row in result.rows:
        assert row.utilization >= base.utilization * 0.97
        assert row.utilization <= oracle.utilization * 1.03

    # The paper's algorithm delivers a large share of the oracle headroom.
    sa = result.row("successive-approximation")
    assert sa.improvement_over(base) > 0.25

    # Explicit feedback within the similarity row is at least as safe:
    # last-instance can verify failures against usage, so it fails (much)
    # less often than implicit successive approximation.
    li = result.row("last-instance")
    assert li.frac_failed <= sa.frac_failed + 1e-9
    assert li.improvement_over(base) > 0.25

    # The no-similarity row also beats the baseline (global policies).
    assert result.row("reinforcement-learning").improvement_over(base) > 0.10
    # Regression is the weakest contender and its edge shrinks with trace
    # size: its conservative log-space margin (prediction + sigma) rarely
    # dips below the 24MB tier boundary when the request features explain
    # little usage variance — consistent with the paper relegating
    # regression to future work.  Require only that it never hurts.
    assert result.row("regression").improvement_over(base) > -0.02
    assert result.row("regression").frac_failed < 0.01
