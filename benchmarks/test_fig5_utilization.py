"""FIG5 bench: regenerate Figure 5 (utilization vs load, with/without
estimation) on the 512x32MB + 512x24MB cluster.

Paper claims checked: estimation improves saturation utilization by ~58%
(we assert a wide band around it — the trace is a calibrated stand-in), the
improvement concentrates in the saturated regime, and the §3.2
conservativeness statistics hold (few failed executions, a 15-40%-ish share
of reduced submissions).
"""

import numpy as np

from conftest import run_once

from repro.experiments import fig5


def test_fig5_utilization_vs_load(benchmark, bench_config, bench_workers_count, save_artifact):
    result = run_once(
        benchmark, lambda: fig5.run(bench_config, max_workers=bench_workers_count)
    )
    save_artifact("fig5", result.format_table() + "\n\n" + result.format_chart())

    # Headline improvement (paper: +58% at the saturation point).
    assert 0.25 <= result.improvement <= 1.0

    # Estimation never hurts utilization at any load.
    ratio = result.with_estimation.utilizations / result.without_estimation.utilizations
    assert np.all(ratio >= 0.97)

    # Conservativeness (§3.2; paper reports <= 0.01% failures, 15-40% reduced).
    assert result.with_estimation.max_frac_failed < 0.01
    lo, hi = result.with_estimation.reduced_range
    assert hi >= 0.15
    assert lo >= 0.0

    # The baseline saturates well below the machine: the over-provisioned
    # requests confine most work to the 32MB half.
    assert result.saturation_without.max_utilization < 0.6


def test_fig5_backfilling_conjecture(benchmark, bench_config, bench_workers_count, save_artifact):
    """§3.1's future-work conjecture: gains carry over to backfilling."""
    import dataclasses

    cfg = dataclasses.replace(bench_config, loads=(0.6, 0.9), n_jobs=min(bench_config.n_jobs, 8000))
    result = run_once(
        benchmark,
        lambda: fig5.run(cfg, policy="easy-backfilling", max_workers=bench_workers_count),
    )
    save_artifact("fig5_backfilling", result.format_table())
    assert result.improvement > 0.15
