"""FIG6 bench: regenerate Figure 6 (slowdown ratio vs load).

Paper claims checked: the no-estimation/with-estimation slowdown ratio is
never below 1 ("resource estimation never causes slowdown to increase") and
peaks dramatically at a moderate load (the paper: around 60%).
"""

import numpy as np

from conftest import run_once

from repro.experiments import fig6


def test_fig6_slowdown_ratio(benchmark, bench_config, bench_workers_count, save_artifact):
    result = run_once(
        benchmark, lambda: fig6.run(bench_config, max_workers=bench_workers_count)
    )
    save_artifact("fig6", result.format_table() + "\n\n" + result.format_chart())

    assert result.never_worse
    assert result.slowdown_ratio.max() > 1.5  # dramatic improvement somewhere
    # The peak sits at a moderate load: the queue exists but is not yet
    # hopeless (paper: ~0.6; our knee shifts with the calibrated trace).
    assert 0.3 <= result.peak_load <= 0.9
    # Past saturation the relative gain shrinks (the paper's explanation:
    # "the higher the loads, the longer the job queue, and the relative
    # decrease in slowdown is less prominent").
    peak_idx = int(np.argmax(result.slowdown_ratio))
    assert result.slowdown_ratio[-1] <= result.slowdown_ratio[peak_idx]
