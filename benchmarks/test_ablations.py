"""Ablation benches for the design choices DESIGN.md calls out.

* **Allocation strategy** — the paper's benefit requires estimated-down jobs
  to actually land on the small machines; best-fit realizes this, worst-fit
  deliberately squanders it.
* **Algorithm 1 parameters** — §2.3's alpha discussion: too small an alpha
  cannot step over capacity gaps (the 16 MB wall moves up), larger alphas
  descend faster but overshoot more.
* **Engine throughput** — the simulator must stay fast enough that the full
  122k-job trace is an interactive experiment.
"""

import dataclasses

from conftest import run_once

from repro.cluster import paper_cluster, two_tier
from repro.core import NoEstimation, SuccessiveApproximation
from repro.experiments.render import format_table
from repro.experiments.runner import run_point
from repro.sim.metrics import utilization
from repro.workload.transforms import scale_load


def _prepared(bench_config, n_jobs=None, load=0.8):
    cfg = bench_config if n_jobs is None else dataclasses.replace(bench_config, n_jobs=n_jobs)
    return scale_load(cfg.make_sim_workload(), load)


def test_ablation_allocation_strategy(benchmark, bench_config, save_artifact):
    trace = _prepared(bench_config, n_jobs=min(bench_config.n_jobs, 10_000))

    def run():
        rows = []
        for strategy in ("best_fit", "worst_fit", "first_fit"):
            cluster = two_tier(512, 32.0, 512, 24.0, strategy=strategy)
            result = run_point(trace, cluster, SuccessiveApproximation(), seed=0)
            rows.append((strategy, utilization(result), result.frac_failed_executions))
        return rows

    rows = run_once(benchmark, run)
    save_artifact(
        "ablation_allocation",
        format_table(
            ["strategy", "utilization", "failed exec"],
            [(s, f"{u:.3f}", f"{f:.3%}") for s, u, f in rows],
            title="Ablation: allocation strategy (with estimation, load 0.8)",
        ),
    )
    by_name = {s: u for s, u, _ in rows}
    # Best-fit must not lose to worst-fit: packing reduced jobs onto small
    # machines is the mechanism behind the paper's gain.
    assert by_name["best_fit"] >= by_name["worst_fit"] * 0.98


def test_ablation_alpha(benchmark, bench_config, save_artifact):
    trace = _prepared(bench_config, n_jobs=min(bench_config.n_jobs, 10_000))

    def run():
        rows = []
        base = run_point(trace, paper_cluster(24.0), NoEstimation(), seed=0)
        rows.append(("none", utilization(base), 0.0, 0.0))
        for alpha in (1.2, 1.5, 2.0, 4.0, 8.0):
            result = run_point(
                trace,
                paper_cluster(24.0),
                SuccessiveApproximation(alpha=alpha, beta=0.0),
                seed=0,
            )
            rows.append(
                (
                    f"alpha={alpha}",
                    utilization(result),
                    result.frac_failed_executions,
                    result.frac_reduced_submissions,
                )
            )
        return rows

    rows = run_once(benchmark, run)
    save_artifact(
        "ablation_alpha",
        format_table(
            ["setting", "utilization", "failed exec", "reduced"],
            [(s, f"{u:.3f}", f"{f:.3%}", f"{r:.0%}") for s, u, f, r in rows],
            title="Ablation: Algorithm 1 alpha (512x32 + 512x24, load 0.8)",
        ),
    )
    util_by = {s: u for s, u, _, _ in rows}
    # §2.3/§3.2: alpha=1.2 cannot step from 32 down to the 24MB tier
    # (32/1.2 = 26.7 > 24), so it behaves like no estimation; alpha=2 gains.
    assert util_by["alpha=1.2"] <= util_by["none"] * 1.05
    assert util_by["alpha=2.0"] > util_by["none"] * 1.2


def test_ablation_beta(benchmark, bench_config, save_artifact):
    trace = _prepared(bench_config, n_jobs=min(bench_config.n_jobs, 10_000))
    # Beta matters on ladders with levels *below* the stable point, where
    # retrying smaller steps after failure can pay off.
    cluster_tiers = [(256, 32.0), (256, 24.0), (256, 12.0), (256, 6.0)]

    def run():
        rows = []
        for beta in (0.0, 0.5, 0.9):
            from repro.cluster.cluster import Cluster

            result = run_point(
                trace,
                Cluster(cluster_tiers, name="4tier"),
                SuccessiveApproximation(alpha=2.0, beta=beta),
                seed=0,
            )
            rows.append(
                (beta, utilization(result), result.frac_failed_executions)
            )
        return rows

    rows = run_once(benchmark, run)
    save_artifact(
        "ablation_beta",
        format_table(
            ["beta", "utilization", "failed exec"],
            [(b, f"{u:.3f}", f"{f:.3%}") for b, u, f in rows],
            title="Ablation: Algorithm 1 beta (4-tier cluster, load 0.8)",
        ),
    )
    # §2.3: larger beta keeps probing after failures -> more failed
    # executions in exchange for (potentially) finer estimates.
    failures = [f for _, _, f in rows]
    assert failures[0] <= failures[-1] + 1e-9


def test_engine_throughput(benchmark, bench_config, save_artifact):
    """Raw simulator speed: jobs simulated per second of wall clock."""
    trace = _prepared(bench_config, n_jobs=min(bench_config.n_jobs, 20_000))
    cluster_factory = lambda: paper_cluster(24.0)

    def run():
        return run_point(trace, cluster_factory(), SuccessiveApproximation(), seed=0)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.n_completed == len(trace)
    jobs_per_sec = len(trace) / benchmark.stats.stats.mean
    save_artifact(
        "engine_throughput",
        f"engine throughput: {jobs_per_sec:,.0f} jobs/s "
        f"({len(trace)} jobs in {benchmark.stats.stats.mean:.2f}s mean)",
    )
    # The full 122k-job trace must stay interactive (paper-scale experiments
    # in minutes): demand at least 5k jobs/s here.
    assert jobs_per_sec > 5_000
