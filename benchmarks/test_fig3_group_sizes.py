"""FIG3 bench: regenerate Figure 3 (similarity-group size distribution).

Paper claims checked: many disjoint groups under the (user, app, req-mem)
key (9885 on the full trace), 19.4% of groups holding >= 10 jobs, those
groups covering 83% of all jobs.
"""

from conftest import bench_n_jobs, run_once

from repro.experiments import fig3
from repro.workload.lanl_cm5 import LANL_CM5


def test_fig3_group_sizes(benchmark, bench_config, save_artifact):
    result = run_once(benchmark, lambda: fig3.run(bench_config))
    save_artifact("fig3", result.format_table() + "\n\n" + result.format_chart())

    dist = result.distribution
    expected_groups = LANL_CM5.n_groups * bench_n_jobs() / LANL_CM5.n_jobs
    assert dist.n_groups == abs(dist.n_groups)
    assert 0.7 * expected_groups <= dist.n_groups <= 1.3 * expected_groups
    assert dist.fraction_of_groups_at_least(10) == abs(dist.fraction_of_groups_at_least(10))
    assert 0.13 <= dist.fraction_of_groups_at_least(10) <= 0.27  # paper: 0.194
    assert 0.72 <= dist.fraction_of_jobs_at_least(10) <= 0.93  # paper: 0.83
