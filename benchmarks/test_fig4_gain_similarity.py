"""FIG4 bench: regenerate Figure 4 (potential gain vs similarity range).

Paper claims checked: most >= 10-job groups sit at the low end of the
similarity-range axis (tight groups), and groups with gain above an order of
magnitude exist — "a good starting point for effective resource estimation".
"""

import numpy as np

from conftest import run_once

from repro.experiments import fig4


def test_fig4_gain_vs_similarity(benchmark, bench_config, save_artifact):
    result = run_once(benchmark, lambda: fig4.run(bench_config))
    save_artifact("fig4", result.format_table() + "\n\n" + result.format_chart())

    assert len(result.points) > 50
    # Tight groups dominate.
    assert np.median(result.ranges) < 1.3
    assert np.mean(result.ranges <= 1.5) > 0.6
    # High-gain opportunities exist and are not confined to loose groups.
    assert result.gains.max() > 10.0
    tight_high_gain = [
        p for p in result.points if p.similarity_range < 1.5 and p.potential_gain > 10.0
    ]
    assert tight_high_gain
